//! Shared experiment harness for the figure/table reproduction binaries.
//!
//! Every `src/bin/*` binary regenerates one table or figure of the paper:
//! it runs the required simulations (or analytical models), prints a
//! paper-vs-measured comparison to stdout, and writes a CSV into
//! `target/experiments/`.
//!
//! Simulations in a figure are independent of each other (each owns its
//! cores, banks, engine, and RNG state), so the harness fans the scheme ×
//! workload matrix out across a bounded worker pool ([`Harness::run_matrix`]
//! / [`pool::run_indexed`]). Results are index-tagged and telemetry is
//! merged in job order after the pool drains, so a parallel run is
//! **byte-identical** to a serial one — `AQUA_BENCH_JOBS=1` recovers the
//! strictly serial behaviour on the caller's thread.
//!
//! Environment knobs (all optional):
//!
//! - `AQUA_BENCH_EPOCHS`: simulated 64 ms epochs per run (default 2).
//! - `AQUA_BENCH_WORKLOADS`: comma-separated subset of workload names
//!   (default: all 18 SPEC + 16 mixes). Names are validated eagerly;
//!   empty entries (e.g. a trailing comma) are ignored.
//! - `AQUA_BENCH_JOBS`: worker threads for the experiment matrix
//!   (default: all available cores; `1` = serial).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gate;
mod matrix;
pub mod output;
pub mod pool;

pub use matrix::{MatrixCell, MatrixResults};

use std::sync::atomic::{AtomicUsize, Ordering};

use aqua::{AquaConfig, AquaEngine};
use aqua_baselines::{Blockhammer, BlockhammerConfig, VictimRefresh, VictimRefreshConfig};
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::BaselineConfig;
use aqua_faults::{derive_cell_seed, FaultSpec};
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{CostAblation, RunReport, SimConfig, Simulation};
use aqua_telemetry::Telemetry;
use aqua_workload::{mix_table, spec, AddressSpace, RequestGenerator};

/// The mitigation schemes the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No mitigation (the normalization baseline).
    Baseline,
    /// AQUA with SRAM tables (section IV).
    AquaSram,
    /// AQUA with memory-mapped tables (section V).
    AquaMapped,
    /// Randomized Row-Swap.
    Rrs,
    /// Classic distance-1 victim refresh.
    VictimRefresh,
    /// Blockhammer-style throttling.
    Blockhammer,
}

impl Scheme {
    /// Scheme name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::AquaSram => "aqua-sram",
            Scheme::AquaMapped => "aqua-mapped",
            Scheme::Rrs => "rrs",
            Scheme::VictimRefresh => "victim-refresh",
            Scheme::Blockhammer => "blockhammer",
        }
    }
}

/// Experiment harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Baseline system (Table I).
    pub base: BaselineConfig,
    /// Rowhammer threshold under study.
    pub t_rh: u64,
    /// Simulated epochs per run.
    pub epochs: u64,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for [`Harness::run_matrix`] (1 = strictly serial).
    pub jobs: usize,
    /// Optional fault campaign. The spec's `seed` is the campaign base
    /// seed; every `(scheme, workload)` cell derives its own plan seed via
    /// [`derive_cell_seed`], so cells stay independent of matrix shape and
    /// scheduling while the whole campaign replays from one number.
    pub faults: Option<FaultSpec>,
    /// Optional per-cell wall-clock budget. A cell that exceeds it panics
    /// inside its pool job (`DramError::WatchdogExpired`) and surfaces as a
    /// failed matrix cell instead of hanging the campaign.
    pub watchdog: Option<std::time::Duration>,
    /// Cost-ablation knobs applied to every simulation this harness runs
    /// (the attribution report's what-if re-runs). `CostAblation::NONE`
    /// is the normal, fully-costed configuration.
    pub ablate: CostAblation,
}

/// Parses an integer environment value, warning — instead of silently
/// falling back — when a value is present but unparsable.
fn env_parse<T>(name: &str, raw: Option<&str>, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display + Copy,
{
    let Some(raw) = raw else { return default };
    match raw.trim().parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("warning: ignoring unparsable {name}={raw:?}; using default {default}");
            default
        }
    }
}

/// Worker count used when `AQUA_BENCH_JOBS` is unset: all available cores.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Harness {
    /// Creates the default harness at `t_rh`, honouring `AQUA_BENCH_EPOCHS`
    /// and `AQUA_BENCH_JOBS`.
    pub fn new(t_rh: u64) -> Self {
        let epochs = env_parse(
            "AQUA_BENCH_EPOCHS",
            std::env::var("AQUA_BENCH_EPOCHS").ok().as_deref(),
            2,
        );
        let jobs = env_parse(
            "AQUA_BENCH_JOBS",
            std::env::var("AQUA_BENCH_JOBS").ok().as_deref(),
            default_jobs(),
        )
        .max(1);
        Harness {
            base: BaselineConfig::paper_table1(),
            t_rh,
            epochs,
            seed: 42,
            jobs,
            faults: None,
            watchdog: None,
            ablate: CostAblation::NONE,
        }
    }

    /// The OS-visible address space (97% of rows; AQUA reserves ~1.2%).
    pub fn space(&self) -> AddressSpace {
        AddressSpace::new(self.base.geometry, 0.97)
    }

    /// All 34 known workload names (18 SPEC + 16 mixes), unfiltered.
    pub fn known_workloads() -> Vec<String> {
        spec::TABLE2
            .iter()
            .map(|w| w.name.to_string())
            .chain(mix_table().iter().map(|m| m.name.clone()))
            .collect()
    }

    /// The workloads to run: all 34 names, or the validated subset selected
    /// by `AQUA_BENCH_WORKLOADS`.
    ///
    /// # Panics
    ///
    /// Panics if the selection names an unknown workload; the message lists
    /// every valid name.
    pub fn workloads(&self) -> Vec<String> {
        match Self::select_workloads(std::env::var("AQUA_BENCH_WORKLOADS").ok().as_deref()) {
            Ok(list) => list,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Resolves an `AQUA_BENCH_WORKLOADS`-style selection (`None` = unset).
    ///
    /// Empty entries — a bare empty string, doubled or trailing commas —
    /// are filtered out rather than becoming a bogus `""` workload, and
    /// every surviving name is validated eagerly so a typo fails here with
    /// the full list of valid names instead of panicking mid-figure.
    fn select_workloads(raw: Option<&str>) -> Result<Vec<String>, String> {
        let known = Self::known_workloads();
        let Some(raw) = raw else { return Ok(known) };
        let picked: Vec<String> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if picked.is_empty() {
            eprintln!(
                "warning: AQUA_BENCH_WORKLOADS={raw:?} selects nothing; \
                 running all {} workloads",
                known.len()
            );
            return Ok(known);
        }
        if let Some(bad) = picked.iter().find(|w| !known.contains(w)) {
            return Err(format!(
                "unknown workload {bad:?} in AQUA_BENCH_WORKLOADS; valid names: {}",
                known.join(", ")
            ));
        }
        Ok(picked)
    }

    /// Builds the four per-core generators for a workload name (a SPEC name
    /// or `mixNN`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    pub fn generators(&self, workload: &str) -> Vec<Box<dyn RequestGenerator>> {
        let space = self.space();
        if let Some(w) = spec::by_name(workload) {
            return (0..self.base.cores)
                .map(|c| {
                    Box::new(w.generator(&space, c, self.base.cores, self.seed))
                        as Box<dyn RequestGenerator>
                })
                .collect();
        }
        if let Some(m) = mix_table().iter().find(|m| m.name == workload) {
            return (0..self.base.cores)
                .map(|c| Box::new(m.generator(&space, c, self.seed)) as Box<dyn RequestGenerator>)
                .collect();
        }
        panic!(
            "unknown workload {workload}; valid names: {}",
            Self::known_workloads().join(", ")
        );
    }

    /// Simulator configuration for one `(scheme, workload)` cell: the shared
    /// base plus, when a fault campaign is active, that cell's derived fault
    /// plan seed and the optional wall-clock watchdog.
    fn sim_config(&self, scheme_name: &str, workload: &str) -> SimConfig {
        let mut cfg = SimConfig::new(self.base)
            .epochs(self.epochs)
            .t_rh(self.t_rh)
            .ablate(self.ablate);
        if let Some(spec) = self.faults {
            cfg = cfg.faults(FaultSpec {
                seed: derive_cell_seed(spec.seed, scheme_name, workload),
                ..spec
            });
        }
        if let Some(budget) = self.watchdog {
            cfg = cfg.watchdog(budget);
        }
        cfg
    }

    /// AQUA configuration at this harness's threshold.
    pub fn aqua_config(&self) -> AquaConfig {
        AquaConfig::for_rowhammer_threshold(self.t_rh, &self.base)
    }

    /// Runs an arbitrary mitigation engine on `workload` and returns both
    /// the report and the engine, for callers that need scheme-specific
    /// statistics (tracker SRAM bits, lookup breakdowns, ...) after the run.
    ///
    /// This is the single simulation path every other runner goes through,
    /// so an attached telemetry hub always reaches the whole stack.
    pub fn run_engine<M: Mitigation>(
        &self,
        mitigation: M,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> (RunReport, M) {
        let scheme_name = mitigation.name();
        let mut sim = Simulation::new(
            self.sim_config(scheme_name, workload),
            mitigation,
            self.generators(workload),
        );
        if let Some(hub) = telemetry {
            sim.attach_telemetry(hub.clone());
        }
        let mut report = sim.run();
        report.workload = workload.to_string();
        (report, sim.into_mitigation())
    }

    fn run_with<M: Mitigation>(
        &self,
        mitigation: M,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> RunReport {
        self.run_engine(mitigation, workload, telemetry).0
    }

    /// Runs one `(scheme, workload)` pair and returns its report.
    pub fn run(&self, scheme: Scheme, workload: &str) -> RunReport {
        self.run_instrumented(scheme, workload, None)
    }

    /// Runs one `(scheme, workload)` pair with an optional telemetry hub
    /// attached to the whole stack (simulator, channel, and mitigation).
    ///
    /// The hub keeps its event trace, histograms, and per-epoch time-series
    /// after the run, so callers can export them (`simulate --trace-out`).
    pub fn run_instrumented(
        &self,
        scheme: Scheme,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> RunReport {
        match scheme {
            Scheme::Baseline => {
                self.run_with(NoMitigation::new(self.base.geometry), workload, telemetry)
            }
            Scheme::AquaSram => {
                let engine = AquaEngine::new(self.aqua_config()).expect("valid AQUA config");
                self.run_with(engine, workload, telemetry)
            }
            Scheme::AquaMapped => {
                let engine = AquaEngine::new(self.aqua_config().with_mapped_tables())
                    .expect("valid AQUA config");
                self.run_with(engine, workload, telemetry)
            }
            Scheme::Rrs => {
                let cfg = RrsConfig::for_rowhammer_threshold(self.t_rh, &self.base);
                self.run_with(RrsEngine::new(cfg), workload, telemetry)
            }
            Scheme::VictimRefresh => {
                let cfg = VictimRefreshConfig::for_rowhammer_threshold(self.t_rh);
                self.run_with(
                    VictimRefresh::new(cfg, self.base.geometry),
                    workload,
                    telemetry,
                )
            }
            Scheme::Blockhammer => {
                let cfg = BlockhammerConfig::for_rowhammer_threshold(self.t_rh);
                self.run_with(
                    Blockhammer::new(cfg, self.base.geometry),
                    workload,
                    telemetry,
                )
            }
        }
    }

    /// Runs the full `schemes` × `workloads` matrix on the worker pool
    /// (`self.jobs` workers) and returns every cell in deterministic
    /// workload-major input order.
    ///
    /// Each job is index-tagged, so scheduling order never changes the
    /// result; a job that panics becomes a failed cell (see
    /// [`MatrixResults::expect_complete`]) instead of aborting the figure.
    pub fn run_matrix(&self, schemes: &[Scheme], workloads: &[String]) -> MatrixResults {
        self.run_matrix_instrumented(schemes, workloads, None)
    }

    /// [`Harness::run_matrix`] with an optional telemetry hub.
    ///
    /// Every job records into its own [`Telemetry::fork`] of `telemetry`;
    /// after the pool drains, the forks are merged back with
    /// [`Telemetry::merge_from`] in job-index order, so the aggregate
    /// counters, histograms, and epoch series are identical whether the
    /// matrix ran on one worker or sixteen.
    pub fn run_matrix_instrumented(
        &self,
        schemes: &[Scheme],
        workloads: &[String],
        telemetry: Option<&Telemetry>,
    ) -> MatrixResults {
        // Wallclock phases on the *parent* hub bracket the coordinator's
        // three stages; per-job sim phases land in the per-job forks and
        // merge back underneath.
        let parent = telemetry.cloned().unwrap_or_default();
        let setup_phase = parent.phase("bench.setup");
        let jobs: Vec<(Scheme, &String)> = workloads
            .iter()
            .flat_map(|w| schemes.iter().map(move |&s| (s, w)))
            .collect();
        let total = jobs.len();
        let done = AtomicUsize::new(0);
        setup_phase.finish();
        let run_phase = parent.phase("bench.run");
        let outcomes = pool::run_indexed(self.jobs, &jobs, |_, &(scheme, workload)| {
            let hub = telemetry.map(Telemetry::fork);
            let report = self.run_instrumented(scheme, workload, hub.as_ref());
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!("[{finished}/{total}] {}/{workload} done", scheme.name());
            (report, hub)
        });
        run_phase.finish();
        let merge_phase = parent.phase("bench.merge");
        let cells = jobs
            .into_iter()
            .zip(outcomes)
            .map(|((scheme, workload), outcome)| {
                let outcome = match outcome {
                    Ok((report, hub)) => {
                        if let (Some(parent), Some(job_hub)) = (telemetry, hub) {
                            parent.merge_from(&job_hub);
                        }
                        Ok(report)
                    }
                    Err(msg) => {
                        eprintln!("[matrix] {}/{workload} FAILED: {msg}", scheme.name());
                        Err(msg)
                    }
                };
                MatrixCell {
                    scheme,
                    workload: workload.clone(),
                    outcome,
                }
            })
            .collect();
        merge_phase.finish();
        MatrixResults::new(cells)
    }

    /// Runs an AQUA-mapped simulation and returns both the report and the
    /// engine-specific statistics (Figure 10's lookup breakdown).
    ///
    /// Goes through the common [`Harness::run_engine`] path, so a telemetry
    /// hub — previously impossible to attach here — instruments these runs
    /// like any other.
    pub fn run_aqua_mapped_detailed(
        &self,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> (RunReport, aqua::LookupBreakdown) {
        let engine =
            AquaEngine::new(self.aqua_config().with_mapped_tables()).expect("valid AQUA config");
        let (report, engine) = self.run_engine(engine, workload, telemetry);
        let breakdown = engine
            .lookup_breakdown()
            .expect("mapped engine reports a breakdown");
        (report, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness {
            base: BaselineConfig::paper_table1(),
            t_rh: 1000,
            epochs: 1,
            seed: 1,
            jobs: 1,
            faults: None,
            watchdog: None,
            ablate: CostAblation::NONE,
        }
    }

    /// A harness small enough to run whole simulations in a unit test.
    fn sim_harness(jobs: usize) -> Harness {
        Harness {
            base: BaselineConfig::tiny(),
            t_rh: 1000,
            epochs: 2,
            seed: 1,
            jobs,
            faults: None,
            watchdog: None,
            ablate: CostAblation::NONE,
        }
    }

    #[test]
    fn workload_list_has_34_entries() {
        let h = tiny_harness();
        // (Unless the env var narrows it; tests run with a clean env.)
        if std::env::var("AQUA_BENCH_WORKLOADS").is_err() {
            assert_eq!(h.workloads().len(), 34);
        }
    }

    #[test]
    fn generators_exist_for_spec_and_mixes() {
        let h = tiny_harness();
        assert_eq!(h.generators("povray").len(), 4);
        assert_eq!(h.generators("mix00").len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        tiny_harness().generators("nope");
    }

    #[test]
    fn scheme_names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            Scheme::Baseline,
            Scheme::AquaSram,
            Scheme::AquaMapped,
            Scheme::Rrs,
            Scheme::VictimRefresh,
            Scheme::Blockhammer,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(names.len(), 6);
    }

    // -- env-var parsing (regression tests for the silent-fallback bugs) --

    #[test]
    fn env_parse_accepts_valid_and_warns_on_garbage() {
        assert_eq!(env_parse("X", None, 2u64), 2);
        assert_eq!(env_parse("X", Some("7"), 2u64), 7);
        assert_eq!(env_parse("X", Some(" 7 "), 2u64), 7);
        // Unparsable values fall back to the default (with a warning on
        // stderr) instead of being silently swallowed.
        assert_eq!(env_parse("X", Some("abc"), 2u64), 2);
        assert_eq!(env_parse("X", Some(""), 2u64), 2);
        assert_eq!(env_parse("X", Some("7.5"), 4usize), 4);
    }

    #[test]
    fn workload_selection_filters_empties_and_validates_eagerly() {
        // Unset: the full list.
        assert_eq!(Harness::select_workloads(None).unwrap().len(), 34);
        // Empty entries (trailing comma, doubled comma, whitespace) vanish.
        assert_eq!(
            Harness::select_workloads(Some("povray,,mcf,")).unwrap(),
            vec!["povray".to_string(), "mcf".to_string()]
        );
        assert_eq!(
            Harness::select_workloads(Some(" lbm , mix03 ")).unwrap(),
            vec!["lbm".to_string(), "mix03".to_string()]
        );
        // An all-empty selection falls back to the full list.
        assert_eq!(Harness::select_workloads(Some("")).unwrap().len(), 34);
        assert_eq!(Harness::select_workloads(Some(",,")).unwrap().len(), 34);
        // Unknown names fail eagerly and the error lists the valid names.
        let err = Harness::select_workloads(Some("povray,nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("valid names"), "{err}");
        assert!(err.contains("povray") && err.contains("mix15"), "{err}");
    }

    // -- parallel runner ----------------------------------------------------

    fn small_matrix(jobs: usize, telemetry: Option<&Telemetry>) -> MatrixResults {
        // Schemes whose configs are geometry-agnostic (AQUA's paper-scale
        // table sizing does not fit BaselineConfig::tiny).
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
        let workloads = vec!["povray".to_string(), "namd".to_string()];
        sim_harness(jobs).run_matrix_instrumented(&schemes, &workloads, telemetry)
    }

    #[test]
    fn parallel_matrix_is_identical_to_serial() {
        let serial = small_matrix(1, None);
        let parallel = small_matrix(4, None);
        assert_eq!(serial.failures().count(), 0);
        assert_eq!(serial, parallel);
        // Cells come back workload-major regardless of scheduling.
        let order: Vec<(&str, &str)> = parallel
            .cells()
            .iter()
            .map(|c| (c.scheme.name(), c.workload.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("baseline", "povray"),
                ("victim-refresh", "povray"),
                ("blockhammer", "povray"),
                ("baseline", "namd"),
                ("victim-refresh", "namd"),
                ("blockhammer", "namd"),
            ]
        );
    }

    #[test]
    fn merged_telemetry_is_scheduling_independent() {
        let hub_serial = Telemetry::new(Default::default());
        let hub_parallel = Telemetry::new(Default::default());
        small_matrix(1, Some(&hub_serial));
        small_matrix(4, Some(&hub_parallel));
        if hub_serial.is_enabled() {
            assert_eq!(hub_serial.summary(), hub_parallel.summary());
            assert_eq!(hub_serial.epochs(), hub_parallel.epochs());
            assert!(hub_serial.summary().unwrap().counter("sim.activations") > Some(0));
        }
    }

    /// Hot-loop campaign regression: after the hasher/container swap and
    /// the allocation-free serve path, JOBS=1 and JOBS=2 must still emit
    /// **byte-identical** artifacts — both the rendered CSV rows and the
    /// merged span stream, not just summary-level equality.
    #[test]
    fn jobs_one_vs_two_emit_byte_identical_csv_and_spans() {
        fn render_csv(results: &MatrixResults) -> String {
            let mut out = String::from("scheme,workload,requests_done,migrations\n");
            for report in results.reports() {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    report.scheme,
                    report.workload,
                    report.requests_done,
                    report.mitigation.row_migrations
                ));
            }
            out
        }
        let hub_serial = Telemetry::new(Default::default());
        let hub_parallel = Telemetry::new(Default::default());
        let serial = small_matrix(1, Some(&hub_serial));
        let parallel = small_matrix(2, Some(&hub_parallel));
        assert_eq!(serial.failures().count(), 0);
        let csv_serial = render_csv(&serial);
        assert_eq!(csv_serial.as_bytes(), render_csv(&parallel).as_bytes());
        assert!(csv_serial.lines().count() > 1, "matrix produced no rows");

        // The quiet matrix above exercises the CSV path but emits no spans;
        // span byte-identity needs cells that actually mitigate. Same
        // fault-heavy tiny-AQUA campaign as the degraded-epoch test.
        fn span_run(jobs: usize) -> Telemetry {
            let mut h = sim_harness(jobs);
            h.faults = Some(FaultSpec {
                seed: 11,
                events_per_epoch: 24,
            });
            let hub = Telemetry::new(Default::default());
            let workloads = ["povray", "namd", "leela"];
            let outcomes = pool::run_indexed(jobs, &workloads, |_, w| {
                let fork = hub.fork();
                let engine = tiny_aqua_engine(&h.base);
                h.run_engine(engine, w, Some(&fork));
                fork
            });
            for outcome in outcomes {
                hub.merge_from(&outcome.expect("cell completes"));
            }
            hub
        }
        let hub_serial = span_run(1);
        let hub_parallel = span_run(2);
        if hub_serial.is_enabled() {
            let spans_serial = format!("{:?}", hub_serial.spans());
            let spans_parallel = format!("{:?}", hub_parallel.spans());
            assert!(!hub_serial.spans().is_empty(), "no spans recorded");
            assert_eq!(spans_serial.as_bytes(), spans_parallel.as_bytes());
        }
    }

    /// A reduced AQUA configuration that fits `BaselineConfig::tiny` (the
    /// paper-scale table sizing does not), so whole fault campaigns run in
    /// a unit test.
    fn tiny_aqua_engine(base: &BaselineConfig) -> AquaEngine {
        let mut cfg = AquaConfig::for_rowhammer_threshold(20, base);
        cfg.tracker_entries_per_bank = 64;
        cfg.rqa_rows = 8;
        cfg.fpt_entries = 64;
        AquaEngine::new(cfg).expect("tiny AQUA config is valid")
    }

    /// Satellite check for the span layer: span **and** fault telemetry
    /// recorded through per-job [`Telemetry::fork`]s and merged back with
    /// [`Telemetry::merge_from`] must be identical whether the campaign ran
    /// serially or on two workers — while the engines actually pass through
    /// degraded-mode epochs (fault-heavy tiny AQUA cells).
    #[test]
    fn span_and_fault_telemetry_merge_survives_degraded_epochs() {
        fn run(jobs: usize) -> (Telemetry, Vec<RunReport>) {
            let mut h = sim_harness(jobs);
            h.faults = Some(FaultSpec {
                seed: 11,
                events_per_epoch: 24,
            });
            let hub = Telemetry::new(Default::default());
            // Workloads without Table II hot rows: their hot-row indices
            // would fall outside BaselineConfig::tiny's address space.
            let workloads = ["povray", "namd", "leela"];
            let outcomes = pool::run_indexed(jobs, &workloads, |_, w| {
                let fork = hub.fork();
                let engine = tiny_aqua_engine(&h.base);
                let (report, _) = h.run_engine(engine, w, Some(&fork));
                (report, fork)
            });
            let reports = outcomes
                .into_iter()
                .map(|outcome| {
                    let (report, fork) = outcome.expect("cell completes");
                    hub.merge_from(&fork);
                    report
                })
                .collect();
            (hub, reports)
        }
        let (hub_serial, reports_serial) = run(1);
        let (hub_parallel, reports_parallel) = run(2);
        assert_eq!(reports_serial, reports_parallel);
        // The campaign actually exercised what it claims to: faults were
        // injected and at least one bank spent epochs in degraded mode.
        let degraded: u64 = reports_serial
            .iter()
            .map(|r| r.faults.degraded_epochs)
            .sum();
        let injected: u64 = reports_serial.iter().map(|r| r.faults.injected).sum();
        assert!(injected > 0, "no faults dispatched");
        assert!(
            degraded > 0,
            "no degraded-mode epochs; raise the fault rate"
        );
        if hub_serial.is_enabled() {
            let serial = hub_serial.summary().unwrap();
            assert_eq!(Some(&serial), hub_parallel.summary().as_ref());
            assert!(serial.spans_recorded > 0, "no spans crossed the merge");
            assert!(
                serial.histogram("span.sim.mitigation").is_some(),
                "merged span stats must keep per-name histograms"
            );
            assert!(serial.counter("aqua.faults_injected") > Some(0));
        }
    }

    #[test]
    fn faulted_matrix_replays_deterministically() {
        let mut h = sim_harness(2);
        h.faults = Some(FaultSpec {
            seed: 5,
            events_per_epoch: 8,
        });
        h.watchdog = Some(std::time::Duration::from_secs(600));
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
        let workloads = vec!["povray".to_string()];
        let first = h.run_matrix(&schemes, &workloads);
        let replay = h.run_matrix(&schemes, &workloads);
        assert_eq!(first.failures().count(), 0);
        assert_eq!(first, replay);
        for report in first.reports() {
            // 2 epochs x 8 events, fully dispatched and fully accounted.
            assert_eq!(report.faults.injected, 16);
            assert_eq!(report.faults.unaccounted, 0);
        }
    }

    #[test]
    fn zero_rate_faults_leave_the_matrix_unchanged() {
        let mut faulted = sim_harness(1);
        faulted.faults = Some(FaultSpec {
            seed: 9,
            events_per_epoch: 0,
        });
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh];
        let workloads = vec!["namd".to_string()];
        let with_plumbing = faulted.run_matrix(&schemes, &workloads);
        let plain = sim_harness(1).run_matrix(&schemes, &workloads);
        assert_eq!(with_plumbing, plain);
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let schemes = [Scheme::Baseline];
        // Bypasses workloads()'s eager validation on purpose: the unknown
        // name panics inside the job, which must surface as a failed cell
        // while the valid cell still completes.
        let workloads = vec!["povray".to_string(), "not-a-workload".to_string()];
        let results = sim_harness(2).run_matrix(&schemes, &workloads);
        assert!(results.try_get(Scheme::Baseline, "povray").is_ok());
        let err = results
            .try_get(Scheme::Baseline, "not-a-workload")
            .unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        assert_eq!(results.failures().count(), 1);
    }
}
