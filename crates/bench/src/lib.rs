//! Shared experiment harness for the figure/table reproduction binaries.
//!
//! Every `src/bin/*` binary regenerates one table or figure of the paper:
//! it runs the required simulations (or analytical models), prints a
//! paper-vs-measured comparison to stdout, and writes a CSV into
//! `target/experiments/`.
//!
//! Simulations in a figure are independent of each other (each owns its
//! cores, banks, engine, and RNG state), so the harness fans the scheme ×
//! workload matrix out across a bounded worker pool ([`Harness::run_matrix`]
//! / [`pool::run_indexed`]). Results are index-tagged and telemetry is
//! merged in job order after the pool drains, so a parallel run is
//! **byte-identical** to a serial one — `AQUA_BENCH_JOBS=1` recovers the
//! strictly serial behaviour on the caller's thread.
//!
//! Matrix cells run under a supervision layer ([`supervise`]): failures
//! are classified into a typed [`RunError`] taxonomy, watchdog expiries
//! are retried from the same seed, other panics get a determinism probe
//! (an unreproducible failure is quarantined), and with a checkpoint
//! journal attached ([`journal`]) an interrupted campaign resumes where it
//! stopped — byte-identical to an uninterrupted run.
//!
//! Environment knobs (all optional):
//!
//! - `AQUA_BENCH_EPOCHS`: simulated 64 ms epochs per run (default 2).
//! - `AQUA_BENCH_CHANNELS`: DRAM channels to simulate (default: the
//!   baseline's channel count, 1). Multi-channel runs shard per channel
//!   (see [`aqua_sim::ShardedSimulation`]) and merge deterministically.
//! - `AQUA_BENCH_SHARD_WORKERS`: worker threads *per simulation* for the
//!   channel shards (`0` = auto: one per channel bounded by the host's
//!   cores; `1` = serial shards). Never changes results, only wallclock.
//! - `AQUA_BENCH_WORKLOADS`: comma-separated subset of workload names
//!   (default: all 18 SPEC + 16 mixes). Names are validated eagerly;
//!   empty entries (e.g. a trailing comma) are ignored.
//! - `AQUA_BENCH_JOBS`: worker threads for the experiment matrix
//!   (default: all available cores; `1` = serial; `0` = auto, same as
//!   unset).
//! - `AQUA_BENCH_PROGRESS=1`: per-start/per-completion progress lines on
//!   stderr (with a per-channel in-flight breakdown on sharded runs).
//! - `AQUA_BENCH_RETRIES`: seeded re-runs granted to a watchdog-expired
//!   cell (default 1; the determinism probe after an ordinary panic is
//!   separate and always exactly one).
//! - `AQUA_BENCH_DEADLINE_MS`: soft per-cell deadline in milliseconds; a
//!   cell past it prints one straggler report, and the hard watchdog
//!   fires at [`Deadline::HARD_FACTOR`]× unless `Harness::watchdog`
//!   overrides it.
//! - `AQUA_BENCH_JOURNAL`: path of the checkpoint/resume journal
//!   (equivalent to the campaign binaries' `--resume`).
//! - `AQUA_METRICS_ADDR`: serve live `/metrics` + `/healthz` on this
//!   address for the whole process ([`aqua_telemetry::MetricsPlane`];
//!   port 0 = ephemeral, observer-only — outputs stay byte-identical).
//!   `AQUA_METRICS_PORT_FILE` receives the bound address and
//!   `AQUA_METRICS_LINGER_MS` keeps the endpoint up after the run;
//!   `AQUA_ALERT_RULES` overrides the alert rules (DESIGN.md §16).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gate;
pub mod journal;
mod matrix;
pub mod output;
pub use aqua_sim::pool;
pub mod supervise;

pub use matrix::{MatrixCell, MatrixHealth, MatrixResults};
pub use supervise::{Attempted, RunError, Supervisor};

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use journal::CellKey;

use aqua::{AquaConfig, AquaEngine};
use aqua_baselines::{Blockhammer, BlockhammerConfig, VictimRefresh, VictimRefreshConfig};
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::BaselineConfig;
use aqua_faults::{derive_cell_seed, FaultSpec};
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{CostAblation, RunReport, ShardedSimulation, SimConfig, Simulation};
use aqua_telemetry::{
    AlertEngine, AlertNotice, MetricsPlane, Snapshot, SnapshotTracker, Telemetry, TelemetryConfig,
    TelemetrySummary,
};
use aqua_workload::{channel_seed, mix_table, spec, AddressSpace, RequestGenerator};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// The mitigation schemes the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No mitigation (the normalization baseline).
    Baseline,
    /// AQUA with SRAM tables (section IV).
    AquaSram,
    /// AQUA with memory-mapped tables (section V).
    AquaMapped,
    /// Randomized Row-Swap.
    Rrs,
    /// Classic distance-1 victim refresh.
    VictimRefresh,
    /// Blockhammer-style throttling.
    Blockhammer,
}

impl Scheme {
    /// Scheme name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::AquaSram => "aqua-sram",
            Scheme::AquaMapped => "aqua-mapped",
            Scheme::Rrs => "rrs",
            Scheme::VictimRefresh => "victim-refresh",
            Scheme::Blockhammer => "blockhammer",
        }
    }
}

/// Soft/hard per-cell wall-clock deadlines, both derivable from the one
/// `AQUA_BENCH_DEADLINE_MS` knob.
///
/// The *soft* deadline is an escalation step: a cell that outlives it
/// prints one straggler report to stderr (see `SimConfig::soft_watchdog`)
/// and keeps running. The *hard* deadline is the cell's watchdog budget —
/// exceeding it kills the cell with [`RunError::WatchdogExpired`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Straggler-report threshold.
    pub soft: std::time::Duration,
    /// Watchdog budget (ignored when [`Harness::watchdog`] is set
    /// explicitly).
    pub hard: std::time::Duration,
}

impl Deadline {
    /// `hard = soft × HARD_FACTOR` when derived from the shared knob.
    pub const HARD_FACTOR: u32 = 4;

    /// Derives both deadlines from one `AQUA_BENCH_DEADLINE_MS` value.
    pub fn from_ms(ms: u64) -> Deadline {
        let soft = std::time::Duration::from_millis(ms);
        Deadline {
            soft,
            hard: soft * Self::HARD_FACTOR,
        }
    }
}

/// Deterministic sabotage of one matrix cell, for exercising the
/// supervision layer itself (`fault_campaign --chaos-cell`): the named
/// cell panics on its first `fail_attempts` attempts and then succeeds,
/// so the determinism probe observes a flaky cell and quarantines it as
/// [`RunError::Nondeterministic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chaos {
    /// `scheme/workload` label of the cell to sabotage.
    pub cell: String,
    /// How many leading attempts panic (1 = flaky, quarantined).
    pub fail_attempts: u32,
}

/// Experiment harness configuration.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Baseline system (Table I).
    pub base: BaselineConfig,
    /// Rowhammer threshold under study.
    pub t_rh: u64,
    /// Simulated epochs per run.
    pub epochs: u64,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for [`Harness::run_matrix`] (1 = strictly serial).
    pub jobs: usize,
    /// Worker threads for the per-channel shards of one multi-channel
    /// simulation (`AQUA_BENCH_SHARD_WORKERS`; `0` = auto, `1` = serial).
    /// A host-parallelism knob like `jobs`: it never changes results and
    /// is excluded from [`Harness::cell_key`].
    pub shard_workers: usize,
    /// Optional fault campaign. The spec's `seed` is the campaign base
    /// seed; every `(scheme, workload)` cell derives its own plan seed via
    /// [`derive_cell_seed`], so cells stay independent of matrix shape and
    /// scheduling while the whole campaign replays from one number.
    pub faults: Option<FaultSpec>,
    /// Optional per-cell wall-clock budget. A cell that exceeds it panics
    /// inside its pool job (`DramError::WatchdogExpired`) and surfaces as a
    /// failed matrix cell instead of hanging the campaign. Takes precedence
    /// over `deadline.hard` when both are set.
    pub watchdog: Option<std::time::Duration>,
    /// Soft/hard deadline escalation (`AQUA_BENCH_DEADLINE_MS`).
    pub deadline: Option<Deadline>,
    /// Seeded re-runs granted to watchdog-expired cells
    /// (`AQUA_BENCH_RETRIES`, default 1).
    pub retries: u32,
    /// Checkpoint/resume journal path (`AQUA_BENCH_JOURNAL` or the
    /// campaign binaries' `--resume`). When set, [`Harness::run_matrix`]
    /// appends one durable record per concluded cell and replays cells
    /// already concluded by an earlier run.
    pub journal: Option<PathBuf>,
    /// Deterministic supervision-layer sabotage (tests and ci.sh only).
    pub chaos: Option<Chaos>,
    /// Cost-ablation knobs applied to every simulation this harness runs
    /// (the attribution report's what-if re-runs). `CostAblation::NONE`
    /// is the normal, fully-costed configuration.
    pub ablate: CostAblation,
    /// Live metrics plane (`AQUA_METRICS_ADDR` or `--metrics-addr`).
    /// Observer-only and excluded from [`Harness::cell_key`], like every
    /// host-parallelism knob: results are byte-identical with it on or
    /// off.
    pub metrics: Option<Arc<MetricsPlane>>,
}

/// Parses an integer environment value, warning — instead of silently
/// falling back — when a value is present but unparsable.
fn env_parse<T>(name: &str, raw: Option<&str>, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display + Copy,
{
    let Some(raw) = raw else { return default };
    match raw.trim().parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("warning: ignoring unparsable {name}={raw:?}; using default {default}");
            default
        }
    }
}

/// Worker count used when `AQUA_BENCH_JOBS` is unset: all available cores.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Harness {
    /// Creates the default harness at `t_rh`, honouring `AQUA_BENCH_EPOCHS`,
    /// `AQUA_BENCH_JOBS`, `AQUA_BENCH_RETRIES`, `AQUA_BENCH_DEADLINE_MS`,
    /// and `AQUA_BENCH_JOURNAL` (see the crate docs).
    pub fn new(t_rh: u64) -> Self {
        let epochs = env_parse(
            "AQUA_BENCH_EPOCHS",
            std::env::var("AQUA_BENCH_EPOCHS").ok().as_deref(),
            2,
        );
        // 0 means "auto" (all available cores), same as leaving it unset —
        // it used to silently fall back to serial.
        let jobs = match env_parse(
            "AQUA_BENCH_JOBS",
            std::env::var("AQUA_BENCH_JOBS").ok().as_deref(),
            default_jobs(),
        ) {
            0 => default_jobs(),
            n => n,
        };
        let retries = env_parse(
            "AQUA_BENCH_RETRIES",
            std::env::var("AQUA_BENCH_RETRIES").ok().as_deref(),
            1u32,
        );
        let base = BaselineConfig::paper_table1();
        let channels = env_parse(
            "AQUA_BENCH_CHANNELS",
            std::env::var("AQUA_BENCH_CHANNELS").ok().as_deref(),
            base.channels,
        );
        let shard_workers = env_parse(
            "AQUA_BENCH_SHARD_WORKERS",
            std::env::var("AQUA_BENCH_SHARD_WORKERS").ok().as_deref(),
            0usize,
        );
        let deadline = std::env::var("AQUA_BENCH_DEADLINE_MS")
            .ok()
            .and_then(|raw| match raw.trim().parse::<u64>() {
                Ok(0) | Err(_) => {
                    eprintln!(
                        "warning: ignoring AQUA_BENCH_DEADLINE_MS={raw:?}; \
                         expected a positive integer of milliseconds"
                    );
                    None
                }
                Ok(ms) => Some(Deadline::from_ms(ms)),
            });
        let journal = std::env::var("AQUA_BENCH_JOURNAL")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .map(PathBuf::from);
        Harness {
            base: base.with_channels(channels),
            t_rh,
            epochs,
            seed: 42,
            jobs,
            shard_workers,
            faults: None,
            watchdog: None,
            deadline,
            retries,
            journal,
            chaos: None,
            ablate: CostAblation::NONE,
            metrics: MetricsPlane::from_env(),
        }
    }

    /// The OS-visible address space (97% of rows; AQUA reserves ~1.2%).
    pub fn space(&self) -> AddressSpace {
        AddressSpace::new(self.base.geometry, 0.97)
    }

    /// All 34 known workload names (18 SPEC + 16 mixes), unfiltered.
    pub fn known_workloads() -> Vec<String> {
        spec::TABLE2
            .iter()
            .map(|w| w.name.to_string())
            .chain(mix_table().iter().map(|m| m.name.clone()))
            .collect()
    }

    /// The workloads to run: all 34 names, or the validated subset selected
    /// by `AQUA_BENCH_WORKLOADS`.
    ///
    /// # Panics
    ///
    /// Panics if the selection names an unknown workload; the message lists
    /// every valid name.
    pub fn workloads(&self) -> Vec<String> {
        match Self::select_workloads(std::env::var("AQUA_BENCH_WORKLOADS").ok().as_deref()) {
            Ok(list) => list,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Resolves an `AQUA_BENCH_WORKLOADS`-style selection (`None` = unset).
    ///
    /// Empty entries — a bare empty string, doubled or trailing commas —
    /// are filtered out rather than becoming a bogus `""` workload, and
    /// every surviving name is validated eagerly so a typo fails here with
    /// the full list of valid names instead of panicking mid-figure.
    fn select_workloads(raw: Option<&str>) -> Result<Vec<String>, String> {
        let known = Self::known_workloads();
        let Some(raw) = raw else { return Ok(known) };
        let picked: Vec<String> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if picked.is_empty() {
            eprintln!(
                "warning: AQUA_BENCH_WORKLOADS={raw:?} selects nothing; \
                 running all {} workloads",
                known.len()
            );
            return Ok(known);
        }
        if let Some(bad) = picked.iter().find(|w| !known.contains(w)) {
            return Err(format!(
                "unknown workload {bad:?} in AQUA_BENCH_WORKLOADS; valid names: {}",
                known.join(", ")
            ));
        }
        Ok(picked)
    }

    /// Builds the four per-core generators for a workload name (a SPEC name
    /// or `mixNN`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    pub fn generators(&self, workload: &str) -> Vec<Box<dyn RequestGenerator>> {
        self.generators_for_channel(workload, 0)
    }

    /// The per-core generators of one channel shard: the same workload
    /// shape, seeded with [`channel_seed`] so each channel hammers its own
    /// rows. Channel 0 keeps the harness seed unchanged —
    /// `generators_for_channel(w, 0)` is exactly [`Harness::generators`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    pub fn generators_for_channel(
        &self,
        workload: &str,
        channel: u32,
    ) -> Vec<Box<dyn RequestGenerator>> {
        let space = self.space();
        let seed = channel_seed(self.seed, channel);
        if let Some(w) = spec::by_name(workload) {
            return (0..self.base.cores)
                .map(|c| {
                    Box::new(w.generator(&space, c, self.base.cores, seed))
                        as Box<dyn RequestGenerator>
                })
                .collect();
        }
        if let Some(m) = mix_table().iter().find(|m| m.name == workload) {
            return (0..self.base.cores)
                .map(|c| Box::new(m.generator(&space, c, seed)) as Box<dyn RequestGenerator>)
                .collect();
        }
        panic!(
            "unknown workload {workload}; valid names: {}",
            Self::known_workloads().join(", ")
        );
    }

    /// Simulator configuration for one `(scheme, workload)` cell: the shared
    /// base plus, when a fault campaign is active, that cell's derived fault
    /// plan seed and the optional soft/hard wall-clock deadlines.
    pub fn sim_config(&self, scheme_name: &str, workload: &str) -> SimConfig {
        let mut cfg = SimConfig::new(self.base)
            .epochs(self.epochs)
            .t_rh(self.t_rh)
            .ablate(self.ablate);
        if let Some(spec) = self.faults {
            cfg = cfg.faults(FaultSpec {
                seed: derive_cell_seed(spec.seed, scheme_name, workload),
                ..spec
            });
        }
        if let Some(deadline) = self.deadline {
            cfg = cfg.soft_watchdog(deadline.soft);
        }
        if let Some(budget) = self.watchdog.or(self.deadline.map(|d| d.hard)) {
            cfg = cfg.watchdog(budget);
        }
        cfg
    }

    /// The checkpoint key of one cell: a digest of everything that
    /// determines its result — experiment label, scheme, workload, seed,
    /// epochs, threshold, geometry, fault spec, and ablation. Host-time
    /// knobs (watchdog, deadline, jobs) are excluded on purpose, so a run
    /// may be resumed under different time budgets (see [`journal`]).
    pub fn cell_key(&self, experiment: &str, scheme: &str, workload: &str) -> CellKey {
        CellKey::digest(&[
            experiment,
            scheme,
            workload,
            &self.seed.to_string(),
            &self.epochs.to_string(),
            &self.t_rh.to_string(),
            &format!("{:?}", self.base),
            &format!("{:?}", self.faults),
            &format!("{:?}", self.ablate),
        ])
    }

    /// Opens this harness's checkpoint journal, if one is configured.
    ///
    /// # Panics
    ///
    /// Panics when the journal exists but cannot be read (an unsupported
    /// format version, an unreadable file): resuming against a journal we
    /// cannot honour must not silently restart the campaign from zero.
    pub fn open_journal(&self) -> Option<journal::Journal> {
        self.journal
            .as_ref()
            .map(|path| journal::Journal::open(path).unwrap_or_else(|e| panic!("{e}")))
    }

    /// Trips the configured chaos sabotage for a matching cell/attempt.
    fn chaos_check(&self, scheme: Scheme, workload: &str, attempt: u32) {
        if let Some(chaos) = &self.chaos {
            if chaos.cell == format!("{}/{workload}", scheme.name())
                && attempt <= chaos.fail_attempts
            {
                panic!(
                    "chaos: injected failure for {} (attempt {attempt})",
                    chaos.cell
                );
            }
        }
    }

    /// AQUA configuration at this harness's threshold.
    pub fn aqua_config(&self) -> AquaConfig {
        AquaConfig::for_rowhammer_threshold(self.t_rh, &self.base)
    }

    /// Runs an arbitrary mitigation engine on `workload` and returns both
    /// the report and the engine, for callers that need scheme-specific
    /// statistics (tracker SRAM bits, lookup breakdowns, ...) after the run.
    ///
    /// This path owns exactly one engine instance, so it simulates exactly
    /// one channel. Multi-channel harnesses (one engine *per* channel) go
    /// through [`Harness::run_instrumented`], which builds the engines
    /// itself and fans them out on the sharded runner.
    ///
    /// # Panics
    ///
    /// Panics when the harness is configured for more than one channel.
    pub fn run_engine<M: Mitigation>(
        &self,
        mitigation: M,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> (RunReport, M) {
        assert!(
            self.base.channels <= 1,
            "run_engine simulates a single channel and cannot replicate its \
             engine across {} channels; use run_instrumented (sharded) instead",
            self.base.channels
        );
        let scheme_name = mitigation.name();
        let mut sim = Simulation::new(
            self.sim_config(scheme_name, workload),
            mitigation,
            self.generators(workload),
        );
        if let Some(hub) = telemetry {
            sim.attach_telemetry(hub.clone());
        }
        if let Some(plane) = &self.metrics {
            sim.attach_metrics_plane(Arc::clone(plane), format!("{scheme_name}/{workload};ch0"));
        }
        let mut report = sim.run();
        report.workload = workload.to_string();
        (report, sim.into_mitigation())
    }

    /// The simulation path behind [`Harness::run_instrumented`]: one
    /// engine per channel from `engines`, per-channel generator streams
    /// seeded with [`channel_seed`], fanned out on
    /// [`ShardedSimulation`] with `self.shard_workers` workers. A
    /// single-channel harness passes through to the plain [`Simulation`]
    /// byte-identically.
    fn run_sharded<M: Mitigation>(
        &self,
        scheme_name: &str,
        engines: impl FnMut(u32) -> M,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> RunReport {
        let mut sim =
            ShardedSimulation::new(self.sim_config(scheme_name, workload), engines, |channel| {
                self.generators_for_channel(workload, channel)
            })
            .shard_workers(self.shard_workers);
        if let Some(hub) = telemetry {
            sim.attach_telemetry(hub.clone());
        }
        if let Some(plane) = &self.metrics {
            sim.attach_metrics_plane(Arc::clone(plane), format!("{scheme_name}/{workload}"));
        }
        let mut report = sim.run();
        report.workload = workload.to_string();
        report
    }

    /// Runs one `(scheme, workload)` pair and returns its report.
    pub fn run(&self, scheme: Scheme, workload: &str) -> RunReport {
        self.run_instrumented(scheme, workload, None)
    }

    /// Runs one `(scheme, workload)` pair with an optional telemetry hub
    /// attached to the whole stack (simulator, channel, and mitigation).
    ///
    /// The hub keeps its event trace, histograms, and per-epoch time-series
    /// after the run, so callers can export them (`simulate --trace-out`).
    ///
    /// Every scheme runs on the sharded multi-channel path: one private
    /// engine instance per channel (built here, per channel, from the same
    /// scheme config), merged deterministically in channel order. With one
    /// channel this is byte-identical to the historical unsharded runner.
    pub fn run_instrumented(
        &self,
        scheme: Scheme,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> RunReport {
        let geometry = self.base.geometry;
        match scheme {
            Scheme::Baseline => self.run_sharded(
                scheme.name(),
                |_c| NoMitigation::new(geometry),
                workload,
                telemetry,
            ),
            Scheme::AquaSram => {
                let cfg = self.aqua_config();
                self.run_sharded(
                    scheme.name(),
                    |_c| AquaEngine::new(cfg).expect("valid AQUA config"),
                    workload,
                    telemetry,
                )
            }
            Scheme::AquaMapped => {
                let cfg = self.aqua_config().with_mapped_tables();
                self.run_sharded(
                    scheme.name(),
                    |_c| AquaEngine::new(cfg).expect("valid AQUA config"),
                    workload,
                    telemetry,
                )
            }
            Scheme::Rrs => {
                let cfg = RrsConfig::for_rowhammer_threshold(self.t_rh, &self.base);
                self.run_sharded(scheme.name(), |_c| RrsEngine::new(cfg), workload, telemetry)
            }
            Scheme::VictimRefresh => {
                let cfg = VictimRefreshConfig::for_rowhammer_threshold(self.t_rh);
                self.run_sharded(
                    scheme.name(),
                    |_c| VictimRefresh::new(cfg, geometry),
                    workload,
                    telemetry,
                )
            }
            Scheme::Blockhammer => {
                let cfg = BlockhammerConfig::for_rowhammer_threshold(self.t_rh);
                self.run_sharded(
                    scheme.name(),
                    |_c| Blockhammer::new(cfg, geometry),
                    workload,
                    telemetry,
                )
            }
        }
    }

    /// Runs the full `schemes` × `workloads` matrix on the worker pool
    /// (`self.jobs` workers) and returns every cell in deterministic
    /// workload-major input order.
    ///
    /// Each job is index-tagged, so scheduling order never changes the
    /// result; a job that panics becomes a failed cell (see
    /// [`MatrixResults::expect_complete`]) instead of aborting the figure.
    pub fn run_matrix(&self, schemes: &[Scheme], workloads: &[String]) -> MatrixResults {
        self.run_matrix_instrumented(schemes, workloads, None)
    }

    /// [`Harness::run_matrix`] with an optional telemetry hub.
    ///
    /// Every job records into its own [`Telemetry::fork`] of `telemetry`;
    /// after the pool drains, the forks are merged back with
    /// [`Telemetry::merge_from`] in job-index order, so the aggregate
    /// counters, histograms, and epoch series are identical whether the
    /// matrix ran on one worker or sixteen.
    ///
    /// Cells run under the supervision layer: `self.retries` seeded
    /// re-runs for watchdog expiries, a determinism probe for other
    /// panics, and — when `self.journal` is set — a durable checkpoint
    /// record per concluded cell plus replay of cells an earlier run
    /// already concluded. A replayed cell's report carries
    /// `telemetry: None` and merges nothing into the parent hub.
    pub fn run_matrix_instrumented(
        &self,
        schemes: &[Scheme],
        workloads: &[String],
        telemetry: Option<&Telemetry>,
    ) -> MatrixResults {
        // A live metrics plane needs per-epoch snapshots, which only an
        // enabled hub can feed. When the caller brought none, create an
        // internal one just for observation: the journal codec drops
        // telemetry and no CSV writer reads it, so deterministic outputs
        // are unchanged (the metrics-plane determinism tests diff the
        // bytes).
        let auto_hub = (telemetry.is_none() && self.metrics.is_some())
            .then(|| Telemetry::new(TelemetryConfig::default()));
        let telemetry = telemetry.or(auto_hub.as_ref());
        // Wallclock phases on the *parent* hub bracket the coordinator's
        // three stages; per-job sim phases land in the per-job forks and
        // merge back underneath.
        let parent = telemetry.cloned().unwrap_or_default();
        let setup_phase = parent.phase("bench.setup");
        let jobs: Vec<(Scheme, &String)> = workloads
            .iter()
            .flat_map(|w| schemes.iter().map(move |&s| (s, w)))
            .collect();
        let total = jobs.len();
        let done = AtomicUsize::new(0);
        let journal = self.open_journal();
        let keys: Vec<CellKey> = jobs
            .iter()
            .map(|&(s, w)| self.cell_key("matrix", s.name(), w))
            .collect();
        let labels: Vec<String> = jobs
            .iter()
            .map(|&(s, w)| format!("{}/{w}", s.name()))
            .collect();
        if let Some(plane) = &self.metrics {
            // Accumulate (not overwrite): campaigns run several matrices
            // back to back and the board is one run-wide rollup.
            plane.update_cells(|c| c.total += total as u64);
        }
        let supervisor = Supervisor {
            max_retries: self.retries,
            telemetry: parent.clone(),
            cancel: None,
            plane: self.metrics.clone(),
        };
        let binding = journal.as_ref().map(|j| supervise::JournalBinding {
            journal: j,
            keys: &keys,
            labels: &labels,
            codec: supervise::Codec {
                encode: encode_matrix_outcome,
                decode: decode_matrix_outcome,
            },
        });
        setup_phase.finish();
        let heartbeat = self
            .metrics
            .as_ref()
            .map(|plane| Heartbeat::start(Arc::clone(plane), parent.clone()));
        let run_phase = parent.phase("bench.run");
        let outcomes = supervise::run_supervised(
            self.jobs,
            &jobs,
            &supervisor,
            binding.as_ref(),
            |_, &(scheme, workload), attempt| {
                self.chaos_check(scheme, workload, attempt);
                let hub = telemetry.map(Telemetry::fork);
                let report = self.run_instrumented(scheme, workload, hub.as_ref());
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!("[{finished}/{total}] {}/{workload} done", scheme.name());
                (report, hub)
            },
        );
        run_phase.finish();
        // Stop the heartbeat before forks merge into the parent: once the
        // parent hub carries the merged `sim.*` counters, republishing it
        // as the `bench` source would double-count them in the plane's
        // aggregates.
        if let Some(hb) = heartbeat {
            hb.stop();
        }
        let merge_phase = parent.phase("bench.merge");
        let cells = jobs
            .into_iter()
            .zip(outcomes)
            .map(|((scheme, workload), attempted)| {
                let outcome = match attempted.outcome {
                    Ok((report, hub)) => {
                        if let (Some(parent), Some(job_hub)) = (telemetry, hub) {
                            parent.merge_from(&job_hub);
                        }
                        Ok(report)
                    }
                    Err(err) => {
                        eprintln!(
                            "[matrix] {}/{workload} FAILED ({}): {err}",
                            scheme.name(),
                            err.kind()
                        );
                        Err(err)
                    }
                };
                MatrixCell {
                    scheme,
                    workload: workload.clone(),
                    outcome,
                    attempts: attempted.attempts,
                    resumed: attempted.resumed,
                }
            })
            .collect();
        merge_phase.finish();
        MatrixResults::new(cells)
    }

    /// Runs an AQUA-mapped simulation and returns both the report and the
    /// engine-specific statistics (Figure 10's lookup breakdown).
    ///
    /// Goes through the common [`Harness::run_engine`] path, so a telemetry
    /// hub — previously impossible to attach here — instruments these runs
    /// like any other.
    pub fn run_aqua_mapped_detailed(
        &self,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> (RunReport, aqua::LookupBreakdown) {
        let engine =
            AquaEngine::new(self.aqua_config().with_mapped_tables()).expect("valid AQUA config");
        let (report, engine) = self.run_engine(engine, workload, telemetry);
        let breakdown = engine
            .lookup_breakdown()
            .expect("mapped engine reports a breakdown");
        (report, breakdown)
    }
}

/// Host-time heartbeat of one matrix run: every 200 ms it publishes the
/// coordinator hub's snapshot under the `bench` source and evaluates the
/// host-time (`rate`) alert rules over the aggregate `sim.requests` of
/// every sim source published on the plane. Host-only by construction:
/// firings warn on stderr and surface on `/healthz`, but never enter the
/// deterministic event ring (see [`aqua_telemetry::alerts`]).
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Heartbeat {
    const INTERVAL: std::time::Duration = std::time::Duration::from_millis(200);

    fn start(plane: Arc<MetricsPlane>, parent: Telemetry) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("aqua-heartbeat".into())
            .spawn(move || Self::beat(&plane, &parent, &stop_flag))
            .expect("spawn heartbeat thread");
        Heartbeat { stop, handle }
    }

    fn beat(plane: &MetricsPlane, parent: &Telemetry, stop: &AtomicBool) {
        let mut engine = AlertEngine::from_env();
        let mut tracker = SnapshotTracker::new();
        let mut prev_requests = 0u64;
        let mut last = std::time::Instant::now();
        let mut seq = 0u64;
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Self::INTERVAL);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(snap) = tracker.capture(parent) {
                plane.publish("bench", snap);
            }
            let requests = plane.aggregate_counter("sim.requests");
            let now = std::time::Instant::now();
            let elapsed_ns = now.duration_since(last).as_nanos() as u64;
            last = now;
            seq += 1;
            // Rate rules only make sense once traffic has been observed:
            // before the first sim source publishes, every rate is 0 and a
            // collapse alert would be pure startup noise.
            if prev_requests > 0 {
                let snap = Snapshot {
                    seq,
                    summary: TelemetrySummary {
                        counters: vec![("sim.requests".to_string(), requests)],
                        ..TelemetrySummary::default()
                    },
                    counter_deltas: vec![(
                        "sim.requests".to_string(),
                        requests.saturating_sub(prev_requests),
                    )],
                    host_elapsed_ns: elapsed_ns,
                    ..Snapshot::default()
                };
                for firing in engine.evaluate_host(&snap) {
                    eprintln!(
                        "warning: [alert] {} fired on the bench heartbeat: \
                         observed {} vs threshold {}",
                        firing.rule, firing.value, firing.threshold
                    );
                    plane.note_alert(AlertNotice {
                        rule: firing.rule.to_string(),
                        value: firing.value,
                        threshold: firing.threshold,
                        source: "bench".to_string(),
                        host_time: true,
                    });
                }
            }
            prev_requests = requests;
        }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Journal payload codec for matrix cells: the report alone is durable;
/// the per-job telemetry fork is a live host-side object and is dropped
/// (a replayed cell merges nothing into the parent hub).
fn encode_matrix_outcome(cell: &(RunReport, Option<Telemetry>)) -> String {
    journal::report_to_json(&cell.0)
}

fn decode_matrix_outcome(
    value: &gate::JsonValue,
) -> Result<(RunReport, Option<Telemetry>), String> {
    journal::report_from_json(value).map(|report| (report, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness {
            base: BaselineConfig::paper_table1(),
            t_rh: 1000,
            epochs: 1,
            seed: 1,
            jobs: 1,
            shard_workers: 0,
            faults: None,
            watchdog: None,
            deadline: None,
            retries: 1,
            journal: None,
            chaos: None,
            ablate: CostAblation::NONE,
            metrics: None,
        }
    }

    /// A harness small enough to run whole simulations in a unit test.
    fn sim_harness(jobs: usize) -> Harness {
        Harness {
            base: BaselineConfig::tiny(),
            t_rh: 1000,
            epochs: 2,
            seed: 1,
            jobs,
            shard_workers: 0,
            faults: None,
            watchdog: None,
            deadline: None,
            retries: 1,
            journal: None,
            chaos: None,
            ablate: CostAblation::NONE,
            metrics: None,
        }
    }

    fn tmp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("aqua-bench-lib-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn workload_list_has_34_entries() {
        let h = tiny_harness();
        // (Unless the env var narrows it; tests run with a clean env.)
        if std::env::var("AQUA_BENCH_WORKLOADS").is_err() {
            assert_eq!(h.workloads().len(), 34);
        }
    }

    #[test]
    fn generators_exist_for_spec_and_mixes() {
        let h = tiny_harness();
        assert_eq!(h.generators("povray").len(), 4);
        assert_eq!(h.generators("mix00").len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        tiny_harness().generators("nope");
    }

    #[test]
    fn scheme_names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            Scheme::Baseline,
            Scheme::AquaSram,
            Scheme::AquaMapped,
            Scheme::Rrs,
            Scheme::VictimRefresh,
            Scheme::Blockhammer,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(names.len(), 6);
    }

    // -- env-var parsing (regression tests for the silent-fallback bugs) --

    #[test]
    fn env_parse_accepts_valid_and_warns_on_garbage() {
        assert_eq!(env_parse("X", None, 2u64), 2);
        assert_eq!(env_parse("X", Some("7"), 2u64), 7);
        assert_eq!(env_parse("X", Some(" 7 "), 2u64), 7);
        // Unparsable values fall back to the default (with a warning on
        // stderr) instead of being silently swallowed.
        assert_eq!(env_parse("X", Some("abc"), 2u64), 2);
        assert_eq!(env_parse("X", Some(""), 2u64), 2);
        assert_eq!(env_parse("X", Some("7.5"), 4usize), 4);
    }

    #[test]
    fn workload_selection_filters_empties_and_validates_eagerly() {
        // Unset: the full list.
        assert_eq!(Harness::select_workloads(None).unwrap().len(), 34);
        // Empty entries (trailing comma, doubled comma, whitespace) vanish.
        assert_eq!(
            Harness::select_workloads(Some("povray,,mcf,")).unwrap(),
            vec!["povray".to_string(), "mcf".to_string()]
        );
        assert_eq!(
            Harness::select_workloads(Some(" lbm , mix03 ")).unwrap(),
            vec!["lbm".to_string(), "mix03".to_string()]
        );
        // An all-empty selection falls back to the full list.
        assert_eq!(Harness::select_workloads(Some("")).unwrap().len(), 34);
        assert_eq!(Harness::select_workloads(Some(",,")).unwrap().len(), 34);
        // Unknown names fail eagerly and the error lists the valid names.
        let err = Harness::select_workloads(Some("povray,nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("valid names"), "{err}");
        assert!(err.contains("povray") && err.contains("mix15"), "{err}");
    }

    // -- parallel runner ----------------------------------------------------

    fn small_matrix(jobs: usize, telemetry: Option<&Telemetry>) -> MatrixResults {
        // Schemes whose configs are geometry-agnostic (AQUA's paper-scale
        // table sizing does not fit BaselineConfig::tiny).
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
        let workloads = vec!["povray".to_string(), "namd".to_string()];
        sim_harness(jobs).run_matrix_instrumented(&schemes, &workloads, telemetry)
    }

    #[test]
    fn parallel_matrix_is_identical_to_serial() {
        let serial = small_matrix(1, None);
        let parallel = small_matrix(4, None);
        assert_eq!(serial.failures().count(), 0);
        assert_eq!(serial, parallel);
        // Cells come back workload-major regardless of scheduling.
        let order: Vec<(&str, &str)> = parallel
            .cells()
            .iter()
            .map(|c| (c.scheme.name(), c.workload.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("baseline", "povray"),
                ("victim-refresh", "povray"),
                ("blockhammer", "povray"),
                ("baseline", "namd"),
                ("victim-refresh", "namd"),
                ("blockhammer", "namd"),
            ]
        );
    }

    #[test]
    fn merged_telemetry_is_scheduling_independent() {
        let hub_serial = Telemetry::new(Default::default());
        let hub_parallel = Telemetry::new(Default::default());
        small_matrix(1, Some(&hub_serial));
        small_matrix(4, Some(&hub_parallel));
        if hub_serial.is_enabled() {
            assert_eq!(hub_serial.summary(), hub_parallel.summary());
            assert_eq!(hub_serial.epochs(), hub_parallel.epochs());
            assert!(hub_serial.summary().unwrap().counter("sim.activations") > Some(0));
        }
    }

    /// Hot-loop campaign regression: after the hasher/container swap and
    /// the allocation-free serve path, JOBS=1 and JOBS=2 must still emit
    /// **byte-identical** artifacts — both the rendered CSV rows and the
    /// merged span stream, not just summary-level equality.
    #[test]
    fn jobs_one_vs_two_emit_byte_identical_csv_and_spans() {
        fn render_csv(results: &MatrixResults) -> String {
            let mut out = String::from("scheme,workload,requests_done,migrations\n");
            for report in results.reports() {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    report.scheme,
                    report.workload,
                    report.requests_done,
                    report.mitigation.row_migrations
                ));
            }
            out
        }
        let hub_serial = Telemetry::new(Default::default());
        let hub_parallel = Telemetry::new(Default::default());
        let serial = small_matrix(1, Some(&hub_serial));
        let parallel = small_matrix(2, Some(&hub_parallel));
        assert_eq!(serial.failures().count(), 0);
        let csv_serial = render_csv(&serial);
        assert_eq!(csv_serial.as_bytes(), render_csv(&parallel).as_bytes());
        assert!(csv_serial.lines().count() > 1, "matrix produced no rows");

        // The quiet matrix above exercises the CSV path but emits no spans;
        // span byte-identity needs cells that actually mitigate. Same
        // fault-heavy tiny-AQUA campaign as the degraded-epoch test.
        fn span_run(jobs: usize) -> Telemetry {
            let mut h = sim_harness(jobs);
            h.faults = Some(FaultSpec {
                seed: 11,
                events_per_epoch: 24,
            });
            let hub = Telemetry::new(Default::default());
            let workloads = ["povray", "namd", "leela"];
            let outcomes = pool::run_indexed(jobs, &workloads, |_, w| {
                let fork = hub.fork();
                let engine = tiny_aqua_engine(&h.base);
                h.run_engine(engine, w, Some(&fork));
                fork
            });
            for outcome in outcomes {
                hub.merge_from(&outcome.expect("cell completes"));
            }
            hub
        }
        let hub_serial = span_run(1);
        let hub_parallel = span_run(2);
        if hub_serial.is_enabled() {
            let spans_serial = format!("{:?}", hub_serial.spans());
            let spans_parallel = format!("{:?}", hub_parallel.spans());
            assert!(!hub_serial.spans().is_empty(), "no spans recorded");
            assert_eq!(spans_serial.as_bytes(), spans_parallel.as_bytes());
        }
    }

    /// The tentpole's bench-level determinism contract: a 4-channel
    /// campaign — matrix CSV rows, merged telemetry spans, checkpoint
    /// journal bytes, and fault-heavy sharded AQUA cells that pass through
    /// degraded-mode epochs — must be **byte-identical** at 1, 2, and 8
    /// shard workers. Only wallclock may change with the worker count.
    #[test]
    fn shard_workers_one_two_eight_emit_byte_identical_artifacts() {
        fn run(shard_workers: usize) -> (String, String, Option<String>, Vec<RunReport>) {
            let path = tmp_journal(&format!("shard-det-{shard_workers}"));
            let mut h = sim_harness(1); // serial matrix: isolate shard_workers
            h.base = h.base.with_channels(4);
            h.shard_workers = shard_workers;
            h.faults = Some(FaultSpec {
                seed: 11,
                events_per_epoch: 24,
            });
            h.journal = Some(path.clone());
            let hub = Telemetry::new(Default::default());
            let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
            let workloads = vec!["povray".to_string(), "namd".to_string()];
            let results = h.run_matrix_instrumented(&schemes, &workloads, Some(&hub));
            results.expect_complete();
            let mut csv = String::from("scheme,workload,requests_done,migrations\n");
            for report in results.reports() {
                csv.push_str(&format!(
                    "{},{},{},{}\n",
                    report.scheme,
                    report.workload,
                    report.requests_done,
                    report.mitigation.row_migrations
                ));
            }
            let journal_bytes = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            // Degraded-bank leg: fault-heavy tiny-AQUA cells on the same
            // sharded path (paper-scale AQUA does not fit tiny geometry).
            let aqua: Vec<RunReport> = ["povray", "namd"]
                .iter()
                .map(|w| h.run_sharded("aqua-sram", |_| tiny_aqua_engine(&h.base), w, Some(&hub)))
                .collect();
            let spans = hub.is_enabled().then(|| format!("{:?}", hub.spans()));
            (csv, journal_bytes, spans, aqua)
        }
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert!(one.0.lines().count() > 1, "matrix produced no rows");
        assert!(!one.1.is_empty(), "journal recorded nothing");
        if let Some(spans) = &one.2 {
            assert!(!spans.is_empty(), "no spans recorded");
        }
        // The AQUA leg exercised what it claims: every channel of every
        // cell dispatched its plan (2 epochs x 24 events x 4 channels x 2
        // workloads) and at least one bank passed through degraded mode.
        let injected: u64 = one.3.iter().map(|r| r.faults.injected).sum();
        assert_eq!(injected, 2 * 24 * 4 * 2);
        let degraded: u64 = one.3.iter().map(|r| r.faults.degraded_epochs).sum();
        assert!(
            degraded > 0,
            "no degraded-mode epochs; raise the fault rate"
        );
        // Channel shards concatenate per-core counts channel-major.
        assert_eq!(
            one.3[0].per_core.len(),
            4 * BaselineConfig::tiny().cores as usize
        );
    }

    /// The metrics plane's determinism contract (DESIGN.md section 16):
    /// matrix CSV rows, checkpoint journal bytes, merged span and event
    /// dumps must be **byte-identical** whether or not a live plane is
    /// attached, at 1 and at 4 shard workers — the plane is an observer,
    /// never a participant. Runs in both telemetry feature modes (with the
    /// feature off the plane serves but publishes nothing).
    #[test]
    fn metrics_plane_never_changes_deterministic_artifacts() {
        fn run(with_plane: bool, shard_workers: usize) -> (String, String, Option<String>) {
            let path = tmp_journal(&format!("plane-det-{with_plane}-{shard_workers}"));
            let mut h = sim_harness(1); // serial matrix: isolate the plane
            h.base = h.base.with_channels(4);
            h.shard_workers = shard_workers;
            h.faults = Some(FaultSpec {
                seed: 11,
                events_per_epoch: 24,
            });
            h.journal = Some(path.clone());
            if with_plane {
                h.metrics = Some(MetricsPlane::bind("127.0.0.1:0").expect("bind ephemeral"));
            }
            let hub = Telemetry::new(Default::default());
            let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
            let workloads = vec!["povray".to_string(), "namd".to_string()];
            let results = h.run_matrix_instrumented(&schemes, &workloads, Some(&hub));
            results.expect_complete();
            let mut csv = String::from("scheme,workload,requests_done,migrations\n");
            for report in results.reports() {
                csv.push_str(&format!(
                    "{},{},{},{}\n",
                    report.scheme,
                    report.workload,
                    report.requests_done,
                    report.mitigation.row_migrations
                ));
            }
            let journal_bytes = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            let dumps = hub
                .is_enabled()
                .then(|| format!("{:?}{:?}", hub.spans(), hub.trace_events()));
            if let Some(plane) = &h.metrics {
                // The observer actually observed: per-channel shard
                // snapshots landed on the board (feature-on only; with
                // telemetry compiled out there is nothing to publish).
                if hub.is_enabled() {
                    assert!(
                        plane.aggregate_counter("sim.requests") > 0,
                        "plane saw no published snapshots"
                    );
                }
                plane.shutdown();
            }
            (csv, journal_bytes, dumps)
        }
        let off = run(false, 1);
        assert_eq!(off, run(true, 1), "plane on/off must not change bytes");
        assert_eq!(off, run(true, 4), "plane + 4 shard workers changed bytes");
        assert!(off.0.lines().count() > 1, "matrix produced no rows");
        assert!(!off.1.is_empty(), "journal recorded nothing");
    }

    /// Deterministic alerting is part of the run, not the plane: a
    /// fault-heavy campaign trips the default `degraded_rising` /
    /// `integrity_escape` rules, counts them on `sim.alerts_fired`, and
    /// records `AlertFired` events in the ring — with no plane attached.
    #[test]
    fn alert_rules_fire_on_faulted_runs_without_a_plane() {
        let mut h = sim_harness(1);
        h.faults = Some(FaultSpec {
            seed: 11,
            events_per_epoch: 24,
        });
        let hub = Telemetry::new(Default::default());
        if !hub.is_enabled() {
            return; // feature off: no counters, no ring, nothing to alert on
        }
        let mut fired = 0;
        for w in ["povray", "namd", "leela"] {
            let fork = hub.fork();
            let engine = tiny_aqua_engine(&h.base);
            let (report, _) = h.run_engine(engine, w, Some(&fork));
            fired += report
                .telemetry
                .as_ref()
                .and_then(|t| t.counter("sim.alerts_fired"))
                .unwrap_or(0);
            hub.merge_from(&fork);
        }
        assert!(fired > 0, "no alert rule fired on a fault-heavy campaign");
        let ring_alerts = hub
            .trace_events()
            .iter()
            .filter(|e| matches!(e.kind, aqua_telemetry::EventKind::AlertFired { .. }))
            .count() as u64;
        assert_eq!(ring_alerts, fired, "every firing lands in the event ring");
    }

    /// A reduced AQUA configuration that fits `BaselineConfig::tiny` (the
    /// paper-scale table sizing does not), so whole fault campaigns run in
    /// a unit test.
    fn tiny_aqua_engine(base: &BaselineConfig) -> AquaEngine {
        let mut cfg = AquaConfig::for_rowhammer_threshold(20, base);
        cfg.tracker_entries_per_bank = 64;
        cfg.rqa_rows = 8;
        cfg.fpt_entries = 64;
        AquaEngine::new(cfg).expect("tiny AQUA config is valid")
    }

    /// Satellite check for the span layer: span **and** fault telemetry
    /// recorded through per-job [`Telemetry::fork`]s and merged back with
    /// [`Telemetry::merge_from`] must be identical whether the campaign ran
    /// serially or on two workers — while the engines actually pass through
    /// degraded-mode epochs (fault-heavy tiny AQUA cells).
    #[test]
    fn span_and_fault_telemetry_merge_survives_degraded_epochs() {
        fn run(jobs: usize) -> (Telemetry, Vec<RunReport>) {
            let mut h = sim_harness(jobs);
            h.faults = Some(FaultSpec {
                seed: 11,
                events_per_epoch: 24,
            });
            let hub = Telemetry::new(Default::default());
            // Workloads without Table II hot rows: their hot-row indices
            // would fall outside BaselineConfig::tiny's address space.
            let workloads = ["povray", "namd", "leela"];
            let outcomes = pool::run_indexed(jobs, &workloads, |_, w| {
                let fork = hub.fork();
                let engine = tiny_aqua_engine(&h.base);
                let (report, _) = h.run_engine(engine, w, Some(&fork));
                (report, fork)
            });
            let reports = outcomes
                .into_iter()
                .map(|outcome| {
                    let (report, fork) = outcome.expect("cell completes");
                    hub.merge_from(&fork);
                    report
                })
                .collect();
            (hub, reports)
        }
        let (hub_serial, reports_serial) = run(1);
        let (hub_parallel, reports_parallel) = run(2);
        assert_eq!(reports_serial, reports_parallel);
        // The campaign actually exercised what it claims to: faults were
        // injected and at least one bank spent epochs in degraded mode.
        let degraded: u64 = reports_serial
            .iter()
            .map(|r| r.faults.degraded_epochs)
            .sum();
        let injected: u64 = reports_serial.iter().map(|r| r.faults.injected).sum();
        assert!(injected > 0, "no faults dispatched");
        assert!(
            degraded > 0,
            "no degraded-mode epochs; raise the fault rate"
        );
        if hub_serial.is_enabled() {
            let serial = hub_serial.summary().unwrap();
            assert_eq!(Some(&serial), hub_parallel.summary().as_ref());
            assert!(serial.spans_recorded > 0, "no spans crossed the merge");
            assert!(
                serial.histogram("span.sim.mitigation").is_some(),
                "merged span stats must keep per-name histograms"
            );
            assert!(serial.counter("aqua.faults_injected") > Some(0));
        }
    }

    #[test]
    fn faulted_matrix_replays_deterministically() {
        let mut h = sim_harness(2);
        h.faults = Some(FaultSpec {
            seed: 5,
            events_per_epoch: 8,
        });
        h.watchdog = Some(std::time::Duration::from_secs(600));
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
        let workloads = vec!["povray".to_string()];
        let first = h.run_matrix(&schemes, &workloads);
        let replay = h.run_matrix(&schemes, &workloads);
        assert_eq!(first.failures().count(), 0);
        assert_eq!(first, replay);
        for report in first.reports() {
            // 2 epochs x 8 events, fully dispatched and fully accounted.
            assert_eq!(report.faults.injected, 16);
            assert_eq!(report.faults.unaccounted, 0);
        }
    }

    #[test]
    fn zero_rate_faults_leave_the_matrix_unchanged() {
        let mut faulted = sim_harness(1);
        faulted.faults = Some(FaultSpec {
            seed: 9,
            events_per_epoch: 0,
        });
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh];
        let workloads = vec!["namd".to_string()];
        let with_plumbing = faulted.run_matrix(&schemes, &workloads);
        let plain = sim_harness(1).run_matrix(&schemes, &workloads);
        assert_eq!(with_plumbing, plain);
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let schemes = [Scheme::Baseline];
        // Bypasses workloads()'s eager validation on purpose: the unknown
        // name panics inside the job, which must surface as a failed cell
        // while the valid cell still completes.
        let workloads = vec!["povray".to_string(), "not-a-workload".to_string()];
        let results = sim_harness(2).run_matrix(&schemes, &workloads);
        assert!(results.try_get(Scheme::Baseline, "povray").is_ok());
        let err = results
            .try_get(Scheme::Baseline, "not-a-workload")
            .unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        assert_eq!(results.failures().count(), 1);
        // The probe re-ran the panicking cell once from its seed and saw
        // the identical message: a classified, deterministic panic.
        let bad = &results.cells()[1];
        assert_eq!(bad.attempts, 2);
        assert!(
            matches!(bad.outcome, Err(RunError::Panic(_))),
            "{:?}",
            bad.outcome
        );
    }

    // -- supervision layer ---------------------------------------------------

    /// Satellite e2e check: a zero-budget watchdog must surface as the
    /// typed `RunError::WatchdogExpired` (not a bare panic string), leave
    /// sibling cells intact, and land in the journal as retriable.
    #[test]
    fn watchdog_zero_surfaces_typed_error_and_journals_retriable() {
        let path = tmp_journal("watchdog-zero");
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh];
        let workloads = vec!["povray".to_string()];
        let mut strangled = sim_harness(2);
        strangled.watchdog = Some(std::time::Duration::ZERO);
        strangled.journal = Some(path.clone());
        let results = strangled.run_matrix(&schemes, &workloads);
        assert_eq!(results.failures().count(), 2);
        for cell in results.cells() {
            assert_eq!(
                cell.outcome,
                Err(RunError::WatchdogExpired { budget_ms: 0 }),
                "{}/{}",
                cell.scheme.name(),
                cell.workload
            );
            // One configured retry, both attempts expired.
            assert_eq!(cell.attempts, 2);
        }
        let j = journal::Journal::open(&path).unwrap();
        assert_eq!(j.loaded(), 2);
        for cell in results.cells() {
            let key = strangled.cell_key("matrix", cell.scheme.name(), &cell.workload);
            let rec = j.lookup(&key).expect("expired cell is journaled");
            assert_eq!(rec.status, "watchdog");
            assert!(rec.retriable, "watchdog expiry must be retriable on resume");
        }
        drop(j);

        // Resuming without the strangling watchdog re-runs (not replays)
        // the retriable cells and completes them...
        let mut resumed = sim_harness(1);
        resumed.journal = Some(path.clone());
        let second = resumed.run_matrix(&schemes, &workloads);
        second.expect_complete();
        assert!(second.cells().iter().all(|c| !c.resumed));
        // ...after which a further resume replays every cell, and the
        // replayed reports are identical to a fresh, journal-free run.
        let mut replayer = sim_harness(1);
        replayer.journal = Some(path.clone());
        let third = replayer.run_matrix(&schemes, &workloads);
        assert!(third.cells().iter().all(|c| c.resumed));
        let fresh = sim_harness(1).run_matrix(&schemes, &workloads);
        let replayed: Vec<&RunReport> = third.reports().collect();
        let rerun: Vec<&RunReport> = fresh.reports().collect();
        assert_eq!(replayed, rerun, "replay is byte-identical to a fresh run");
        std::fs::remove_file(&path).unwrap();
    }

    /// The tentpole resume contract at the matrix level: interrupting a
    /// campaign after some cells (here: simulated by running a narrower
    /// matrix first) and resuming must produce reports byte-identical to
    /// an uninterrupted run, replaying exactly the journaled cells.
    #[test]
    fn partial_journal_resume_is_byte_identical_to_uninterrupted() {
        let path = tmp_journal("partial-resume");
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh, Scheme::Blockhammer];
        let first_half = vec!["povray".to_string()];
        let all = vec!["povray".to_string(), "namd".to_string()];
        let mut h = sim_harness(2);
        h.journal = Some(path.clone());
        // "Interrupted" run: only the first workload's cells conclude.
        h.run_matrix(&schemes, &first_half).expect_complete();
        // Resume over the full matrix: povray cells replay, namd cells run.
        let resumed = h.run_matrix(&schemes, &all);
        resumed.expect_complete();
        let resumed_flags: Vec<bool> = resumed.cells().iter().map(|c| c.resumed).collect();
        assert_eq!(resumed_flags, [true, true, true, false, false, false]);
        let uninterrupted = sim_harness(2).run_matrix(&schemes, &all);
        let a: Vec<&RunReport> = resumed.reports().collect();
        let b: Vec<&RunReport> = uninterrupted.reports().collect();
        assert_eq!(a, b);
        std::fs::remove_file(&path).unwrap();
    }

    /// A chaos-sabotaged cell panics on attempt 1 and succeeds on the
    /// probe: the supervisor must quarantine it as nondeterministic (the
    /// ci.sh `--strict` must-fail path).
    #[test]
    fn chaos_cell_is_quarantined_as_nondeterministic() {
        let schemes = [Scheme::Baseline, Scheme::VictimRefresh];
        let workloads = vec!["povray".to_string()];
        let mut h = sim_harness(2);
        h.chaos = Some(Chaos {
            cell: "baseline/povray".to_string(),
            fail_attempts: 1,
        });
        let results = h.run_matrix(&schemes, &workloads);
        let bad = &results.cells()[0];
        match &bad.outcome {
            Err(RunError::Nondeterministic { detail }) => {
                assert!(detail.contains("chaos"), "{detail}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The sibling cell is untouched.
        assert!(results.try_get(Scheme::VictimRefresh, "povray").is_ok());
    }

    #[test]
    fn deadline_knob_derives_soft_and_hard_budgets() {
        let d = Deadline::from_ms(250);
        assert_eq!(d.soft, std::time::Duration::from_millis(250));
        assert_eq!(d.hard, std::time::Duration::from_millis(1000));
        // A generous deadline changes nothing about the results.
        let mut h = sim_harness(1);
        h.deadline = Some(Deadline::from_ms(600_000));
        let schemes = [Scheme::Baseline];
        let workloads = vec!["povray".to_string()];
        let with_deadline = h.run_matrix(&schemes, &workloads);
        with_deadline.expect_complete();
        let plain = sim_harness(1).run_matrix(&schemes, &workloads);
        assert_eq!(
            with_deadline.reports().collect::<Vec<_>>(),
            plain.reports().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cell_keys_separate_experiments_and_cells() {
        let h = sim_harness(1);
        let a = h.cell_key("matrix", "baseline", "povray");
        assert_eq!(a, h.cell_key("matrix", "baseline", "povray"));
        assert_ne!(a, h.cell_key("matrix", "baseline", "namd"));
        assert_ne!(a, h.cell_key("dos_worstcase", "baseline", "povray"));
        let mut other_seed = sim_harness(1);
        other_seed.seed = 2;
        assert_ne!(a, other_seed.cell_key("matrix", "baseline", "povray"));
        // Host-time knobs do not change the key: resume survives new budgets.
        let mut budgeted = sim_harness(4);
        budgeted.watchdog = Some(std::time::Duration::from_secs(1));
        budgeted.deadline = Some(Deadline::from_ms(5));
        assert_eq!(a, budgeted.cell_key("matrix", "baseline", "povray"));
    }
}
