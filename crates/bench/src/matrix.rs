//! The deterministic scheme × workload experiment matrix.

use crate::supervise::RunError;
use crate::Scheme;
use aqua_sim::RunReport;

/// One `(scheme, workload)` cell of an experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// The scheme this cell ran.
    pub scheme: Scheme,
    /// The workload this cell ran.
    pub workload: String,
    /// The run report, or the classified error of a cell with no result.
    pub outcome: Result<RunReport, RunError>,
    /// Attempts the supervised runner spent on the cell (>1 = it was
    /// retried; see [`RunError`] for the retry contract).
    pub attempts: u32,
    /// True when the outcome was replayed from a checkpoint journal
    /// instead of simulated by this run.
    pub resumed: bool,
}

/// Results of [`crate::Harness::run_matrix`], in deterministic input order:
/// workload-major, i.e. every scheme of workload 0, then workload 1, and so
/// on — independent of how the worker pool scheduled the jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResults {
    cells: Vec<MatrixCell>,
}

impl MatrixResults {
    pub(crate) fn new(cells: Vec<MatrixCell>) -> Self {
        MatrixResults { cells }
    }

    /// All cells, in input (workload-major) order.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The report of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell was never part of the matrix or its job failed
    /// (the panic message names the cell and relays the job's own message).
    pub fn get(&self, scheme: Scheme, workload: &str) -> &RunReport {
        match self.try_get(scheme, workload) {
            Ok(report) => report,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// The report of one cell, or a description of why it is unavailable.
    pub fn try_get(&self, scheme: Scheme, workload: &str) -> Result<&RunReport, String> {
        let cell = self
            .cells
            .iter()
            .find(|c| c.scheme == scheme && c.workload == workload)
            .ok_or_else(|| format!("no matrix cell for {} / {workload}", scheme.name()))?;
        cell.outcome
            .as_ref()
            .map_err(|e| format!("matrix cell {} / {workload} failed: {e}", scheme.name()))
    }

    /// The cells with no trustworthy result — failed, quarantined, or
    /// canceled — if any.
    pub fn failures(&self) -> impl Iterator<Item = &MatrixCell> {
        self.cells.iter().filter(|c| c.outcome.is_err())
    }

    /// The successful reports, in input order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.cells.iter().filter_map(|c| c.outcome.as_ref().ok())
    }

    /// Panics if any cell failed, listing every failed cell. Figure binaries
    /// call this right after the matrix so one bad cell does not silently
    /// produce a partial CSV.
    pub fn expect_complete(&self) -> &Self {
        let failed: Vec<String> = self
            .failures()
            .map(|c| format!("{} / {}: {}", c.scheme.name(), c.workload, flat(c)))
            .collect();
        assert!(
            failed.is_empty(),
            "{} matrix cell(s) failed:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
        self
    }
}

fn flat(cell: &MatrixCell) -> String {
    match &cell.outcome {
        Err(e) => e.to_string(),
        Ok(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> MatrixResults {
        MatrixResults::new(vec![
            MatrixCell {
                scheme: Scheme::Baseline,
                workload: "lbm".into(),
                outcome: Ok(RunReport {
                    workload: "lbm".into(),
                    requests_done: 7,
                    ..Default::default()
                }),
                attempts: 1,
                resumed: false,
            },
            MatrixCell {
                scheme: Scheme::Rrs,
                workload: "lbm".into(),
                outcome: Err(RunError::Panic("boom".into())),
                attempts: 2,
                resumed: false,
            },
        ])
    }

    #[test]
    fn get_resolves_successful_cells() {
        assert_eq!(results().get(Scheme::Baseline, "lbm").requests_done, 7);
    }

    #[test]
    fn failed_and_missing_cells_report_why() {
        let r = results();
        let err = r.try_get(Scheme::Rrs, "lbm").unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert!(err.contains("panic"), "the taxonomy kind is visible: {err}");
        let err = r.try_get(Scheme::Rrs, "mcf").unwrap_err();
        assert!(err.contains("no matrix cell"), "{err}");
        assert_eq!(r.failures().count(), 1);
        assert_eq!(r.reports().count(), 1);
    }

    #[test]
    #[should_panic(expected = "matrix cell(s) failed")]
    fn expect_complete_panics_on_failures() {
        results().expect_complete();
    }
}
