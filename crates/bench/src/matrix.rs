//! The deterministic scheme × workload experiment matrix.

use crate::supervise::RunError;
use crate::Scheme;
use aqua_sim::RunReport;

/// One `(scheme, workload)` cell of an experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// The scheme this cell ran.
    pub scheme: Scheme,
    /// The workload this cell ran.
    pub workload: String,
    /// The run report, or the classified error of a cell with no result.
    pub outcome: Result<RunReport, RunError>,
    /// Attempts the supervised runner spent on the cell (>1 = it was
    /// retried; see [`RunError`] for the retry contract).
    pub attempts: u32,
    /// True when the outcome was replayed from a checkpoint journal
    /// instead of simulated by this run.
    pub resumed: bool,
}

/// Results of [`crate::Harness::run_matrix`], in deterministic input order:
/// workload-major, i.e. every scheme of workload 0, then workload 1, and so
/// on — independent of how the worker pool scheduled the jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResults {
    cells: Vec<MatrixCell>,
}

impl MatrixResults {
    pub(crate) fn new(cells: Vec<MatrixCell>) -> Self {
        MatrixResults { cells }
    }

    /// All cells, in input (workload-major) order.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The report of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell was never part of the matrix or its job failed
    /// (the panic message names the cell and relays the job's own message).
    pub fn get(&self, scheme: Scheme, workload: &str) -> &RunReport {
        match self.try_get(scheme, workload) {
            Ok(report) => report,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// The report of one cell, or a description of why it is unavailable.
    pub fn try_get(&self, scheme: Scheme, workload: &str) -> Result<&RunReport, String> {
        let cell = self
            .cells
            .iter()
            .find(|c| c.scheme == scheme && c.workload == workload)
            .ok_or_else(|| format!("no matrix cell for {} / {workload}", scheme.name()))?;
        cell.outcome
            .as_ref()
            .map_err(|e| format!("matrix cell {} / {workload} failed: {e}", scheme.name()))
    }

    /// The cells with no trustworthy result — failed, quarantined, or
    /// canceled — if any.
    pub fn failures(&self) -> impl Iterator<Item = &MatrixCell> {
        self.cells.iter().filter(|c| c.outcome.is_err())
    }

    /// The successful reports, in input order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.cells.iter().filter_map(|c| c.outcome.as_ref().ok())
    }

    /// Folds the whole matrix into one health rollup: cell fates plus the
    /// alert count summed from every successful report's
    /// `sim.alerts_fired` counter. Campaign binaries print it and
    /// `--fail-on-alert` gates on `alerts_fired`.
    pub fn health(&self) -> MatrixHealth {
        let mut h = MatrixHealth::default();
        for cell in &self.cells {
            match &cell.outcome {
                Ok(report) => {
                    h.ok += 1;
                    h.alerts_fired += report
                        .telemetry
                        .as_ref()
                        .and_then(|t| t.counter("sim.alerts_fired"))
                        .unwrap_or(0);
                }
                Err(RunError::Nondeterministic { .. }) => {
                    h.failed += 1;
                    h.quarantined += 1;
                }
                Err(_) => h.failed += 1,
            }
            if cell.resumed {
                h.resumed += 1;
            }
            h.retried += u64::from(cell.attempts.saturating_sub(1));
        }
        h
    }

    /// Panics if any cell failed, listing every failed cell. Figure binaries
    /// call this right after the matrix so one bad cell does not silently
    /// produce a partial CSV.
    pub fn expect_complete(&self) -> &Self {
        let failed: Vec<String> = self
            .failures()
            .map(|c| format!("{} / {}: {}", c.scheme.name(), c.workload, flat(c)))
            .collect();
        assert!(
            failed.is_empty(),
            "{} matrix cell(s) failed:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
        self
    }
}

/// One matrix's health rollup (see [`MatrixResults::health`]). Counts are
/// derived purely from the deterministic results, so the rollup is
/// byte-identical across worker counts — unlike the live plane's view,
/// which observes the same facts as they happen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixHealth {
    /// Cells with a trustworthy report.
    pub ok: u64,
    /// Cells with no trustworthy result (includes quarantined).
    pub failed: u64,
    /// Cells quarantined as nondeterministic.
    pub quarantined: u64,
    /// Cells replayed from a checkpoint journal.
    pub resumed: u64,
    /// Extra attempts beyond each cell's first.
    pub retried: u64,
    /// Deterministic alert firings summed over every successful report
    /// (`sim.alerts_fired`; 0 when runs carried no telemetry).
    pub alerts_fired: u64,
}

fn flat(cell: &MatrixCell) -> String {
    match &cell.outcome {
        Err(e) => e.to_string(),
        Ok(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> MatrixResults {
        MatrixResults::new(vec![
            MatrixCell {
                scheme: Scheme::Baseline,
                workload: "lbm".into(),
                outcome: Ok(RunReport {
                    workload: "lbm".into(),
                    requests_done: 7,
                    ..Default::default()
                }),
                attempts: 1,
                resumed: false,
            },
            MatrixCell {
                scheme: Scheme::Rrs,
                workload: "lbm".into(),
                outcome: Err(RunError::Panic("boom".into())),
                attempts: 2,
                resumed: false,
            },
        ])
    }

    #[test]
    fn get_resolves_successful_cells() {
        assert_eq!(results().get(Scheme::Baseline, "lbm").requests_done, 7);
    }

    #[test]
    fn failed_and_missing_cells_report_why() {
        let r = results();
        let err = r.try_get(Scheme::Rrs, "lbm").unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert!(err.contains("panic"), "the taxonomy kind is visible: {err}");
        let err = r.try_get(Scheme::Rrs, "mcf").unwrap_err();
        assert!(err.contains("no matrix cell"), "{err}");
        assert_eq!(r.failures().count(), 1);
        assert_eq!(r.reports().count(), 1);
    }

    #[test]
    #[should_panic(expected = "matrix cell(s) failed")]
    fn expect_complete_panics_on_failures() {
        results().expect_complete();
    }

    #[test]
    fn health_rolls_up_fates_and_alert_counts() {
        let mut r = results();
        // A quarantined, resumed, retried cell plus a report that carries
        // two alert firings in its telemetry summary.
        r.cells.push(MatrixCell {
            scheme: Scheme::AquaSram,
            workload: "mcf".into(),
            outcome: Err(RunError::Nondeterministic {
                detail: "flaky".into(),
            }),
            attempts: 2,
            resumed: false,
        });
        r.cells.push(MatrixCell {
            scheme: Scheme::AquaSram,
            workload: "lbm".into(),
            outcome: Ok(RunReport {
                workload: "lbm".into(),
                telemetry: Some(aqua_telemetry::TelemetrySummary {
                    counters: vec![("sim.alerts_fired".into(), 2)],
                    ..Default::default()
                }),
                ..Default::default()
            }),
            attempts: 3,
            resumed: true,
        });
        let h = r.health();
        // retried: 1 (base fixture's Rrs cell, attempts=2) + 1 (the
        // quarantined cell, attempts=2) + 2 (the resumed cell, attempts=3).
        assert_eq!(
            h,
            MatrixHealth {
                ok: 2,
                failed: 2,
                quarantined: 1,
                resumed: 1,
                retried: 4,
                alerts_fired: 2,
            }
        );
    }
}
