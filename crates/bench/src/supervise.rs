//! Supervised execution of experiment cells: structured errors, bounded
//! deterministic retries, quarantine, and journal-backed resume.
//!
//! [`run_supervised`] wraps [`crate::pool::run_indexed`] with three layers
//! (DESIGN.md section 14):
//!
//! 1. **Error taxonomy.** A failed cell surfaces as a typed [`RunError`]
//!    classified from its panic payload, not a bare string.
//! 2. **Retry determinism contract.** The whole stack is seeded, so a
//!    genuine simulation failure must reproduce byte-for-byte. A watchdog
//!    expiry is host-time noise and is retried up to
//!    [`Supervisor::max_retries`] times; any other panic gets exactly one
//!    *determinism probe* re-run from the same seed — if the probe does not
//!    reproduce the identical panic, the cell is quarantined as
//!    [`RunError::Nondeterministic`] (a result that cannot be trusted *or*
//!    reproduced has no business in a figure).
//! 3. **Checkpoint/resume.** With a [`JournalBinding`], every concluded
//!    cell is appended to the crash-consistent journal before the runner
//!    moves on, and cells already concluded by an earlier (possibly
//!    interrupted) run are replayed instead of re-simulated.
//!
//! Supervision telemetry — retry/resume/quarantine counters and events —
//! is recorded on the supervisor's hub *after* the pool drains, in input
//! order, so it is byte-identical regardless of worker count.
//!
//! A [`MetricsPlane`], by contrast, is updated *live* (cell started,
//! in flight, completed, failed, retried, quarantined, resumed) — it is a
//! host-time observer whose update order legitimately depends on
//! scheduling, and nothing deterministic ever reads it back.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::gate::JsonValue;
use crate::journal::{CellKey, Journal};
use crate::pool;
use aqua_telemetry::{EventKind, MetricsPlane, Telemetry};

/// Why an experiment cell has no trustworthy result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The job panicked, and a seeded re-run reproduced the identical
    /// panic: a deterministic failure worth debugging.
    Panic(String),
    /// The cell exceeded its hard wall-clock budget
    /// (`DramError::WatchdogExpired`). Host-time, not simulated time, so
    /// this is the one *retriable* failure: a loaded machine can expire a
    /// watchdog that a retry — or a resume on a quieter host — completes.
    WatchdogExpired {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// The job tripped an internal consistency assertion. Never retried:
    /// the simulator state it describes is already wrong.
    InvariantViolation(String),
    /// The determinism probe could not reproduce the original failure —
    /// the cell's behaviour depends on something outside its seed, and it
    /// is quarantined (no retry can make its result trustworthy).
    Nondeterministic {
        /// What the first attempt and the probe each did.
        detail: String,
    },
    /// The supervisor was told to stop before this cell ran.
    Canceled,
}

impl RunError {
    /// Classifies a raw panic message into the taxonomy.
    pub fn classify(msg: &str) -> RunError {
        if let Some(rest) = msg.split("watchdog: simulation exceeded its ").nth(1) {
            let budget_ms = rest
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .unwrap_or(0);
            return RunError::WatchdogExpired { budget_ms };
        }
        if msg.contains("assertion") || msg.contains("invariant") {
            return RunError::InvariantViolation(msg.to_string());
        }
        RunError::Panic(msg.to_string())
    }

    /// Stable kind tag, used as the journal record status and in campaign
    /// CSV status columns.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Panic(_) => "panic",
            RunError::WatchdogExpired { .. } => "watchdog",
            RunError::InvariantViolation(_) => "invariant",
            RunError::Nondeterministic { .. } => "nondeterministic",
            RunError::Canceled => "canceled",
        }
    }

    /// Whether resuming (or retrying) may legitimately produce a result:
    /// true only for host-time failures and never-ran cells. A journal
    /// record with `retriable: true` is re-run on resume instead of
    /// replayed.
    pub fn retriable(&self) -> bool {
        matches!(self, RunError::WatchdogExpired { .. } | RunError::Canceled)
    }

    /// The kind-free detail string journaled in a record's `error` field;
    /// `from_journal(self.kind(), &self.detail())` rebuilds `self`.
    pub(crate) fn detail(&self) -> String {
        match self {
            RunError::Panic(msg) => msg.clone(),
            // classify() parses the budget back out of the display form.
            RunError::WatchdogExpired { .. } => self.to_string(),
            RunError::InvariantViolation(msg) => msg.clone(),
            RunError::Nondeterministic { detail } => detail.clone(),
            RunError::Canceled => String::new(),
        }
    }

    /// Rebuilds the error a journal record describes.
    pub(crate) fn from_journal(status: &str, error: &str) -> RunError {
        match status {
            "watchdog" => RunError::classify(error),
            "invariant" => RunError::InvariantViolation(error.to_string()),
            "nondeterministic" => RunError::Nondeterministic {
                detail: error.to_string(),
            },
            "canceled" => RunError::Canceled,
            _ => RunError::Panic(error.to_string()),
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic(msg) => write!(f, "panic: {msg}"),
            RunError::WatchdogExpired { budget_ms } => write!(
                f,
                "watchdog: simulation exceeded its {budget_ms} ms wall-clock budget"
            ),
            RunError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            RunError::Nondeterministic { detail } => {
                write!(f, "nondeterministic (quarantined): {detail}")
            }
            RunError::Canceled => write!(f, "canceled before it ran"),
        }
    }
}

/// Retry policy and supervision telemetry for one supervised pool run.
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Extra seeded attempts granted to *watchdog* failures (the
    /// `AQUA_BENCH_RETRIES` knob). The determinism probe after an ordinary
    /// panic is separate and always exactly one.
    pub max_retries: u32,
    /// Hub receiving retry/resume/quarantine counters and events
    /// (recorded post-drain in input order; disabled hub = free).
    pub telemetry: Telemetry,
    /// Cooperative cancellation: once set, cells that have not started
    /// conclude as [`RunError::Canceled`] (journaled as retriable).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Live metrics plane receiving cell-health updates as they happen
    /// (see the module docs; `None` = no live observer).
    pub plane: Option<Arc<MetricsPlane>>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            max_retries: 1,
            telemetry: Telemetry::disabled(),
            cancel: None,
            plane: None,
        }
    }
}

/// The conclusion the supervisor reached for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempted<T> {
    /// The cell's result, or why there is none.
    pub outcome: Result<T, RunError>,
    /// Attempts actually spent this process (0 = canceled or replayed
    /// straight from the journal... see `resumed`; replays report the
    /// recorded attempt count instead).
    pub attempts: u32,
    /// True when the outcome was replayed from a journal record written by
    /// an earlier run rather than simulated now.
    pub resumed: bool,
}

/// Encodes/decodes one cell result to/from its journal payload.
pub struct Codec<T> {
    /// Renders a result as one compact (single-line) JSON value.
    pub encode: fn(&T) -> String,
    /// Rebuilds a result from a parsed payload.
    pub decode: fn(&JsonValue) -> Result<T, String>,
}

impl<T> Clone for Codec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Codec<T> {}

/// Wires a supervised run to a checkpoint journal: per-cell keys and
/// labels (parallel to the item slice) plus the payload codec.
pub struct JournalBinding<'a, T> {
    /// The open journal.
    pub journal: &'a Journal,
    /// Per-item [`CellKey`], same order as the item slice.
    pub keys: &'a [CellKey],
    /// Per-item human-readable label (`scheme/workload`), for log lines.
    pub labels: &'a [String],
    /// Payload codec.
    pub codec: Codec<T>,
}

/// Runs `f(index, item, attempt)` over every item under supervision (see
/// the module docs), with at most `jobs` cells in flight. `attempt` is
/// 1-based; a retried cell re-invokes `f` with the same index and item —
/// everything that seeds the cell must come from those, so the re-run is
/// deterministic. Results come back in input order.
pub fn run_supervised<I, T, F>(
    jobs: usize,
    items: &[I],
    sup: &Supervisor,
    binding: Option<&JournalBinding<'_, T>>,
    f: F,
) -> Vec<Attempted<T>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I, u32) -> T + Sync,
{
    // Resolve journal replays serially up front (deterministic log order).
    let mut slots: Vec<Option<Attempted<T>>> = (0..items.len())
        .map(|i| binding.and_then(|b| replay(b, i)))
        .collect();
    let pending: Vec<usize> = (0..items.len()).filter(|&i| slots[i].is_none()).collect();
    if let Some(plane) = &sup.plane {
        let resumed = (items.len() - pending.len()) as u64;
        if resumed > 0 {
            plane.update_cells(|c| c.resumed += resumed);
        }
    }
    let ran = pool::run_indexed(jobs, &pending, |_, &i| {
        if let Some(plane) = &sup.plane {
            plane.update_cells(|c| {
                c.started += 1;
                c.in_flight += 1;
            });
        }
        let att = attempt_cell(i, &items[i], sup, &f);
        if let Some(plane) = &sup.plane {
            plane.update_cells(|c| {
                c.in_flight = c.in_flight.saturating_sub(1);
                c.retried += u64::from(att.attempts.saturating_sub(1));
                match &att.outcome {
                    Ok(_) => c.completed += 1,
                    Err(RunError::Nondeterministic { .. }) => {
                        c.failed += 1;
                        c.quarantined += 1;
                    }
                    Err(_) => c.failed += 1,
                }
            });
        }
        if let Some(b) = binding {
            append(b, i, &att);
        }
        att
    });
    for (&i, outcome) in pending.iter().zip(ran) {
        slots[i] = Some(outcome.unwrap_or_else(|msg| Attempted {
            // attempt_cell contains job panics itself; reaching this arm
            // means the supervisor's own bookkeeping panicked.
            outcome: Err(RunError::classify(&msg)),
            attempts: 1,
            resumed: false,
        }));
    }
    let results: Vec<Attempted<T>> = slots
        .into_iter()
        .map(|slot| slot.expect("every slot resolved"))
        .collect();
    record_telemetry(sup, &results);
    results
}

/// Replays cell `i` from its journal record, or `None` if it must run.
fn replay<T>(b: &JournalBinding<'_, T>, i: usize) -> Option<Attempted<T>> {
    let rec = b.journal.lookup(&b.keys[i])?;
    let label = &b.labels[i];
    if rec.retriable {
        eprintln!(
            "[journal] {label}: previous run ended {} (retriable); re-running",
            rec.status
        );
        return None;
    }
    if rec.status == "ok" {
        let decoded = rec
            .payload
            .as_ref()
            .ok_or_else(|| "record has no payload".to_string())
            .and_then(|p| (b.codec.decode)(p));
        return match decoded {
            Ok(v) => {
                eprintln!("[journal] {label}: resumed from checkpoint");
                Some(Attempted {
                    outcome: Ok(v),
                    attempts: rec.attempts,
                    resumed: true,
                })
            }
            Err(e) => {
                eprintln!("warning: [journal] {label}: undecodable record ({e}); re-running");
                None
            }
        };
    }
    eprintln!(
        "[journal] {label}: resumed as {} (deterministic failure)",
        rec.status
    );
    Some(Attempted {
        outcome: Err(RunError::from_journal(
            &rec.status,
            rec.error.as_deref().unwrap_or(""),
        )),
        attempts: rec.attempts,
        resumed: true,
    })
}

/// Appends a concluded cell to the journal (crash-consistent: the record
/// is durable before the pool reports the cell done).
fn append<T>(b: &JournalBinding<'_, T>, i: usize, att: &Attempted<T>) {
    let (key, label) = (b.keys[i], b.labels[i].as_str());
    match &att.outcome {
        Ok(v) => b
            .journal
            .append_ok(key, label, att.attempts, &(b.codec.encode)(v)),
        Err(e) => b.journal.append_err(
            key,
            label,
            att.attempts,
            e.kind(),
            e.retriable(),
            &e.detail(),
        ),
    }
}

/// Runs one cell's attempt loop; never panics (panics are contained and
/// classified per attempt).
fn attempt_cell<I, T>(
    i: usize,
    item: &I,
    sup: &Supervisor,
    f: &(impl Fn(usize, &I, u32) -> T + Sync),
) -> Attempted<T> {
    if let Some(cancel) = &sup.cancel {
        if cancel.load(Ordering::Relaxed) {
            return Attempted {
                outcome: Err(RunError::Canceled),
                attempts: 0,
                resumed: false,
            };
        }
    }
    let run = |attempt: u32| {
        catch_unwind(AssertUnwindSafe(|| f(i, item, attempt))).map_err(pool::panic_message)
    };
    let conclude = |outcome: Result<T, RunError>, attempts: u32| Attempted {
        outcome,
        attempts,
        resumed: false,
    };
    let first_msg = match run(1) {
        Ok(v) => return conclude(Ok(v), 1),
        Err(msg) => msg,
    };
    match RunError::classify(&first_msg) {
        RunError::WatchdogExpired { budget_ms } => {
            // Host-time flake: grant up to `max_retries` full re-runs.
            let mut last = RunError::WatchdogExpired { budget_ms };
            let mut attempts = 1;
            for attempt in 2..=sup.max_retries.saturating_add(1) {
                attempts = attempt;
                match run(attempt) {
                    Ok(v) => return conclude(Ok(v), attempts),
                    Err(msg) => {
                        last = RunError::classify(&msg);
                        if !matches!(last, RunError::WatchdogExpired { .. }) {
                            break;
                        }
                    }
                }
            }
            conclude(Err(last), attempts)
        }
        RunError::Panic(_) => {
            // Determinism probe: one seeded re-run must reproduce the
            // byte-identical panic, else the cell is quarantined.
            match run(2) {
                Err(probe_msg) if probe_msg == first_msg => {
                    conclude(Err(RunError::Panic(first_msg)), 2)
                }
                Err(probe_msg) => conclude(
                    Err(RunError::Nondeterministic {
                        detail: format!(
                            "first attempt panicked ({first_msg}); seeded re-run \
                             panicked differently ({probe_msg})"
                        ),
                    }),
                    2,
                ),
                Ok(_) => conclude(
                    Err(RunError::Nondeterministic {
                        detail: format!(
                            "first attempt panicked ({first_msg}); seeded re-run \
                             completed cleanly"
                        ),
                    }),
                    2,
                ),
            }
        }
        other => conclude(Err(other), 1),
    }
}

/// Records supervision counters/events on the supervisor's hub, in input
/// order (scheduling-independent, so parallel == serial byte-for-byte).
fn record_telemetry<T>(sup: &Supervisor, results: &[Attempted<T>]) {
    let hub = &sup.telemetry;
    if !hub.is_enabled() {
        return;
    }
    let retries = hub.counter("bench.retries");
    let resumed = hub.counter("bench.cells_resumed");
    let quarantined = hub.counter("bench.cells_quarantined");
    let watchdogs = hub.counter("bench.watchdog_expired");
    for (i, att) in results.iter().enumerate() {
        let job = i as u64;
        if att.resumed {
            resumed.inc();
            hub.record(0, EventKind::CellResumed { job });
            continue;
        }
        for attempt in 2..=u64::from(att.attempts) {
            retries.inc();
            hub.record(0, EventKind::RetryAttempt { job, attempt });
        }
        match &att.outcome {
            Err(RunError::Nondeterministic { .. }) => quarantined.inc(),
            Err(RunError::WatchdogExpired { .. }) => watchdogs.inc(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::CellKey;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("aqua-supervise-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn int_codec() -> Codec<u32> {
        fn enc(v: &u32) -> String {
            format!("{{\"value\":{v}}}")
        }
        fn dec(v: &JsonValue) -> Result<u32, String> {
            v.as_obj()
                .and_then(|o| crate::gate::json::get(o, "value"))
                .and_then(JsonValue::as_f64)
                .map(|f| f as u32)
                .ok_or_else(|| "bad payload".into())
        }
        Codec {
            encode: enc,
            decode: dec,
        }
    }

    #[test]
    fn classification_covers_the_taxonomy() {
        assert_eq!(
            RunError::classify("watchdog: simulation exceeded its 250 ms wall-clock budget"),
            RunError::WatchdogExpired { budget_ms: 250 }
        );
        assert!(matches!(
            RunError::classify("assertion `left == right` failed"),
            RunError::InvariantViolation(_)
        ));
        assert!(matches!(
            RunError::classify("quarantine invariant broken"),
            RunError::InvariantViolation(_)
        ));
        assert!(matches!(
            RunError::classify("unknown workload nope"),
            RunError::Panic(_)
        ));
        assert!(RunError::WatchdogExpired { budget_ms: 1 }.retriable());
        assert!(RunError::Canceled.retriable());
        assert!(!RunError::Panic("x".into()).retriable());
        assert!(!RunError::Nondeterministic { detail: "x".into() }.retriable());
    }

    #[test]
    fn watchdog_display_reclassifies_to_the_same_error() {
        let e = RunError::WatchdogExpired { budget_ms: 77 };
        assert_eq!(RunError::classify(&e.to_string()), e);
    }

    #[test]
    fn deterministic_panic_is_probed_once_and_kept() {
        let calls = AtomicU32::new(0);
        let out = run_supervised(1, &[0u32], &Supervisor::default(), None, |_, _, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always the same");
        });
        let _: &Vec<Attempted<()>> = &out;
        assert_eq!(calls.load(Ordering::Relaxed), 2, "exactly one probe");
        assert_eq!(out[0].attempts, 2);
        assert_eq!(
            out[0].outcome,
            Err(RunError::Panic("always the same".into()))
        );
    }

    #[test]
    fn flaky_panic_is_quarantined_as_nondeterministic() {
        let calls = AtomicU32::new(0);
        let out = run_supervised(1, &[0u32], &Supervisor::default(), None, |_, _, _| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("only the first time");
            }
            7u32
        });
        assert_eq!(out[0].attempts, 2);
        match &out[0].outcome {
            Err(RunError::Nondeterministic { detail }) => {
                assert!(detail.contains("only the first time"), "{detail}");
                assert!(detail.contains("completed cleanly"), "{detail}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_failures_get_bounded_retries() {
        // Expires twice, then would succeed — but max_retries=1 grants only
        // one re-run, so the cell concludes expired after 2 attempts.
        let calls = AtomicU32::new(0);
        let sup = Supervisor::default();
        let out = run_supervised(1, &[0u32], &sup, None, |_, _, _| -> u32 {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("watchdog: simulation exceeded its 5 ms wall-clock budget");
        });
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(
            out[0].outcome,
            Err(RunError::WatchdogExpired { budget_ms: 5 })
        );

        // With a transient expiry, the retry's success is accepted as-is
        // (host time does not affect simulated results).
        let calls = AtomicU32::new(0);
        let out = run_supervised(1, &[0u32], &sup, None, |_, _, _| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("watchdog: simulation exceeded its 5 ms wall-clock budget");
            }
            42u32
        });
        assert_eq!(out[0].outcome, Ok(42));
        assert_eq!(out[0].attempts, 2);
    }

    #[test]
    fn canceled_cells_never_run() {
        let cancel = Arc::new(AtomicBool::new(true));
        let sup = Supervisor {
            cancel: Some(cancel),
            ..Supervisor::default()
        };
        let out = run_supervised(1, &[1u32, 2], &sup, None, |_, _, _| -> u32 {
            unreachable!("canceled before start")
        });
        for att in &out {
            assert_eq!(att.outcome, Err(RunError::Canceled));
            assert_eq!(att.attempts, 0);
        }
    }

    #[test]
    fn journal_roundtrip_replays_ok_and_deterministic_failures() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let items = [10u32, 20, 30];
        let keys: Vec<CellKey> = items
            .iter()
            .map(|v| CellKey::digest(&["test", &v.to_string()]))
            .collect();
        let labels: Vec<String> = items.iter().map(|v| format!("cell/{v}")).collect();
        let run = |f: fn(usize, &u32, u32) -> u32| {
            let journal = Journal::open(&path).unwrap();
            let binding = JournalBinding {
                journal: &journal,
                keys: &keys,
                labels: &labels,
                codec: int_codec(),
            };
            run_supervised(2, &items, &Supervisor::default(), Some(&binding), f)
        };
        // First pass: the middle cell fails deterministically.
        let first = run(|_, &v, _| {
            if v == 20 {
                panic!("bad cell 20");
            }
            v * 2
        });
        assert_eq!(first[0].outcome, Ok(20));
        assert!(matches!(first[1].outcome, Err(RunError::Panic(_))));
        assert!(first.iter().all(|a| !a.resumed));
        // Second pass would succeed everywhere — but every cell (including
        // the deterministic failure) replays from the journal instead.
        let second = run(|_, &v, _| v * 2);
        assert!(second.iter().all(|a| a.resumed));
        assert_eq!(second[0].outcome, Ok(20));
        assert_eq!(
            second[1].outcome,
            Err(RunError::Panic("bad cell 20".into()))
        );
        assert_eq!(second[2].outcome, Ok(60));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn supervision_telemetry_is_input_ordered() {
        let hub = Telemetry::new(Default::default());
        let sup = Supervisor {
            telemetry: hub.clone(),
            ..Supervisor::default()
        };
        let out = run_supervised(4, &[0u32, 1, 2], &sup, None, |_, &v, _| {
            if v == 1 {
                panic!("deterministic failure");
            }
            v
        });
        assert_eq!(out.len(), 3);
        if hub.is_enabled() {
            let summary = hub.summary().unwrap();
            assert_eq!(summary.counter("bench.retries"), Some(1));
            let events: Vec<_> = hub
                .trace_events()
                .into_iter()
                .filter(|e| matches!(e.kind, EventKind::RetryAttempt { .. }))
                .collect();
            assert_eq!(events.len(), 1);
            assert_eq!(
                events[0].kind,
                EventKind::RetryAttempt { job: 1, attempt: 2 }
            );
        }
    }
}
