//! Console watcher for a live AQUA metrics plane.
//!
//! ```text
//! monitor --addr HOST:PORT [--interval-ms N] [--once] [--raw]
//! ```
//!
//! Tails the `/healthz` endpoint that a run exposes via
//! `AQUA_METRICS_ADDR` (or `--metrics-addr` on `simulate` /
//! `fault_campaign`) and redraws a per-scheme, per-channel table every
//! `--interval-ms` (default 1000) until interrupted:
//!
//! ```text
//! aqua monitor — up 12.4s, 3 scrapes, 0 alerts
//! cells: 12 planned, 4 done, 2 in flight, 0 failed (0 retried, 0 resumed, 0 stragglers)
//! source                         ch     seq    requests     req/s  escapes  degraded
//! aqua-sram/mcf                   0      17     1048576    215000        0         0
//! ```
//!
//! - `--once`: print a single table and exit (0 on success, 1 when the
//!   endpoint is unreachable or replies garbage)
//! - `--raw`: fetch `/metrics` instead and dump the Prometheus text
//!   exposition verbatim to stdout — a curl substitute for scripts
//!   (ci.sh scrapes mid-run through this)
//!
//! The monitor is a pure observer: it talks only to the scrape endpoint,
//! never to the run, so attaching or detaching it cannot change any
//! deterministic output.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use aqua_bench::gate::{json, JsonValue};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// One HTTP/1.1 GET with `Connection: close`; returns the body.
fn get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response (no header terminator)".to_string())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{path} returned {status:?}"));
    }
    Ok(body.to_string())
}

/// Splits `scheme/workload;ch3` into the base label and channel column.
fn split_channel(source: &str) -> (&str, &str) {
    if let Some(idx) = source.rfind(";ch") {
        let channel = &source[idx + 3..];
        if !channel.is_empty() && channel.bytes().all(|b| b.is_ascii_digit()) {
            return (&source[..idx], channel);
        }
    }
    (source, "-")
}

fn num(obj: &[(String, JsonValue)], name: &str) -> f64 {
    json::get(obj, name)
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0)
}

/// Renders one `/healthz` document as the console table.
fn render(doc: &JsonValue) -> Result<String, String> {
    let root = doc.as_obj().ok_or("healthz root is not an object")?;
    let mut out = format!(
        "aqua monitor — up {:.1}s, {} scrapes, {} alerts\n",
        num(root, "uptime_ms") / 1e3,
        num(root, "scrapes"),
        num(root, "alerts_fired"),
    );
    if let Some(cells) = json::get(root, "cells").and_then(JsonValue::as_obj) {
        out.push_str(&format!(
            "cells: {} planned, {} done, {} in flight, {} failed \
             ({} retried, {} resumed, {} stragglers)\n",
            num(cells, "planned"),
            num(cells, "completed"),
            num(cells, "in_flight"),
            num(cells, "failed"),
            num(cells, "retried"),
            num(cells, "resumed"),
            num(cells, "stragglers"),
        ));
    }
    out.push_str(&format!(
        "{:<30} {:>3} {:>7} {:>11} {:>9} {:>8} {:>9}\n",
        "source", "ch", "seq", "requests", "req/s", "escapes", "degraded"
    ));
    let sources = json::get(root, "sources")
        .and_then(JsonValue::as_obj)
        .ok_or("healthz carries no sources object")?;
    for (source, snap) in sources {
        let Some(s) = snap.as_obj() else { continue };
        let (base, channel) = split_channel(source);
        out.push_str(&format!(
            "{:<30} {:>3} {:>7} {:>11} {:>9.0} {:>8} {:>9}\n",
            base,
            channel,
            num(s, "seq"),
            num(s, "requests"),
            num(s, "requests_per_sec"),
            num(s, "integrity_escapes"),
            num(s, "degraded_epochs"),
        ));
    }
    if let Some(alerts) = json::get(root, "alerts").and_then(JsonValue::as_arr) {
        for alert in alerts {
            let Some(a) = alert.as_obj() else { continue };
            out.push_str(&format!(
                "ALERT {} on {}: observed {} vs threshold {}{}\n",
                json::get(a, "rule")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?"),
                json::get(a, "source")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?"),
                num(a, "value"),
                num(a, "threshold"),
                if json::get(a, "host_time").and_then(JsonValue::as_bool) == Some(true) {
                    " (host-time)"
                } else {
                    ""
                },
            ));
        }
    }
    Ok(out)
}

fn tick(addr: &str, raw: bool) -> Result<(), String> {
    if raw {
        print!("{}", get(addr, "/metrics")?);
        return Ok(());
    }
    let body = get(addr, "/healthz")?;
    let doc = json::parse(&body).map_err(|e| format!("parse healthz JSON: {e}"))?;
    print!("{}", render(&doc)?);
    Ok(())
}

fn main() {
    let Some(addr) = arg("--addr") else {
        eprintln!("usage: monitor --addr HOST:PORT [--interval-ms N] [--once] [--raw]");
        std::process::exit(2);
    };
    let interval: u64 = arg("--interval-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let once = flag("--once");
    let raw = flag("--raw");

    loop {
        match tick(&addr, raw) {
            Ok(()) => {
                if once {
                    return;
                }
            }
            Err(e) => {
                eprintln!("monitor: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(interval));
        println!();
    }
}
