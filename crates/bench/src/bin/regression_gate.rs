//! Performance-regression gate over a deterministic canary matrix.
//!
//! ```text
//! regression_gate [--baseline FILE] [--out FILE] [--write-baseline]
//!                 [--inject-slowdown PP] [--inject-throttle FACTOR]
//!                 [--resume JOURNAL]
//! ```
//!
//! Runs three schemes (aqua-sram, aqua-mapped, rrs) x two workloads
//! (mcf, povray) at pinned `epochs=1`, `T_RH=1000`, `seed=42`. For every
//! cell it measures:
//!
//! - **slowdown** vs the unmitigated baseline (same seeded streams);
//! - **migrations per epoch** (behavioral drift canary);
//! - the **causal attribution decomposition** — three extra what-if
//!   re-runs with one cost ablated each (`CostAblation`), decomposed by
//!   `aqua_analysis::attribution` into migration-blocking, lookup-latency,
//!   table-traffic, and residual components that sum to the slowdown;
//! - **span-derived phase latencies** (p50/p99 of every `span.*` duration
//!   histogram) when the `telemetry` feature is compiled in.
//!
//! After the behavioral matrix it also times a **throughput canary**:
//! `THROUGHPUT_REPEATS` (>= 5) serial repeats of the aqua-sram/mcf cell
//! against the host clock, reporting the median/min/max accesses per
//! wallclock second. The gate fails only when the median collapses below
//! `baseline / THROUGHPUT_FACTOR` — a hot-loop floor, not a noise detector.
//!
//! Then a **scaling canary**: the same cell on a `SCALING_CHANNELS`-channel
//! topology. First determinism — the run is repeated at 1, 2, and
//! host-parallel shard workers and the reports must be *identical* (a hard
//! assert, not a tolerance) — then wallclock: the cell is timed at
//! `shard_workers=1` and at one worker per channel, and the ratio of
//! medians is recorded as `scaling_efficiency`. The gate enforces
//! `SCALING_MIN_SPEEDUP` only when the measuring host has at least
//! `SCALING_CHANNELS` cores; a smaller host records honest numbers and
//! skips that check (shards time-slicing one core cannot speed up).
//!
//! The result is written to `--out` (default
//! `target/experiments/BENCH_8.json`) and compared against the committed
//! baseline (`--baseline`, default `BENCH_8.json`) with the per-metric
//! tolerances of `aqua_bench::gate::tolerance`. Pre-throughput (v1) and
//! pre-scaling (v3) baselines are still accepted; the missing gates simply
//! skip. Exit status: 0 = pass, 1 = regression (one line per violated
//! tolerance on stderr), 2 = usage or I/O error.
//!
//! `--write-baseline` re-measures and overwrites the baseline file
//! instead of comparing (use after an intentional perf change); when
//! `--out` is also given the new baseline is written there instead.
//! `--inject-slowdown PP` adds PP percentage points to every cell's
//! slowdown and residual after measurement — a synthetic regression used
//! by CI to prove the gate actually fails. `--inject-throttle FACTOR`
//! divides the measured throughput canary by FACTOR after measurement,
//! the synthetic hot-loop collapse CI uses to prove the throughput floor
//! is a must-fail check, not advisory.
//!
//! The behavioral part of the report is deterministic (seeded streams, no
//! wall-clock in results), so a re-run on unchanged code reproduces the
//! baseline numbers exactly; only the throughput block carries host-time
//! noise, which is why its tolerance is a factor, not a percentage.
//! `AQUA_BENCH_JOBS` only changes wall-clock time. Setting
//! `AQUA_METRICS_ADDR` serves a live `/metrics`+`/healthz` plane via the
//! harness while the gate runs; it is observer-only and never moves the
//! measured numbers or the pass/fail verdict.
//!
//! The behavioral matrix runs under the supervision layer; `--resume
//! JOURNAL` (or `AQUA_BENCH_JOURNAL`) checkpoints every canary cell as it
//! concludes and replays concluded cells on a re-run (DESIGN.md section
//! 14). The throughput canary is host-time and is therefore re-measured on
//! every run, never journaled.

use aqua_analysis::attribution::{AblationCounts, Attribution};
use aqua_bench::gate::{
    self, CellAttribution, CellMetrics, GateReport, PhaseLatency, ScalingMetrics, ThroughputMetrics,
};
use aqua_bench::{journal, supervise, Harness, Scheme};
use aqua_sim::CostAblation;
use aqua_telemetry::Telemetry;

const T_RH: u64 = 1000;
const EPOCHS: u64 = 1;
const SEED: u64 = 42;
const SCHEMES: [Scheme; 3] = [Scheme::AquaSram, Scheme::AquaMapped, Scheme::Rrs];
const WORKLOADS: [&str; 2] = ["mcf", "povray"];

/// Timed repeats of the throughput canary cell. Odd and >= 5 so the median
/// is a real sample and shrugs off a couple of noisy repeats.
const THROUGHPUT_REPEATS: u64 = 5;
const THROUGHPUT_SCHEME: Scheme = Scheme::AquaSram;
const THROUGHPUT_WORKLOAD: &str = "mcf";

/// Channel count of the scaling canary: the same cell as the throughput
/// canary but sharded across this many per-channel engines.
const SCALING_CHANNELS: u32 = 4;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// One simulation of the canary: the unmitigated baseline for a workload,
/// or a scheme cell under some ablation. Only the fully-costed scheme run
/// (`ablate == NONE`) carries a telemetry hub for span latencies.
#[derive(Clone, Copy)]
struct Job {
    scheme: Option<Scheme>,
    workload: &'static str,
    ablate: CostAblation,
}

struct JobResult {
    requests_done: u64,
    migrations_per_epoch: f64,
    phases: Vec<PhaseLatency>,
}

/// Human-readable tag for the cell's ablation variant (journal labels).
fn ablate_tag(a: CostAblation) -> &'static str {
    if a == CostAblation::NONE {
        "full"
    } else if a == CostAblation::FREE_MIGRATION {
        "free-migration"
    } else if a == CostAblation::FREE_LOOKUP {
        "free-lookup"
    } else if a == CostAblation::FREE_TABLE_TRAFFIC {
        "free-table-traffic"
    } else {
        "custom"
    }
}

/// Journal key for one canary job. The shared `cell_key` digest folds in
/// `Harness::ablate`, so the key is computed on a clone carrying the job's
/// own ablation variant.
fn job_key(harness: &Harness, job: &Job) -> journal::CellKey {
    let mut h = harness.clone();
    h.ablate = job.ablate;
    h.cell_key(
        "regression_gate",
        job.scheme.map_or("baseline", Scheme::name),
        job.workload,
    )
}

/// Escapes `s` as a JSON string into `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes a [`JobResult`] as a compact journal payload. `f64` metrics use
/// Rust's shortest-roundtrip formatting, so decode-then-encode is a
/// byte-level fixpoint and resumed gate reports diff clean.
fn encode_job(r: &JobResult) -> String {
    assert!(
        r.requests_done < (1 << 53),
        "requests_done exceeds f64 precision"
    );
    let mut out = format!(
        "{{\"requests_done\":{},\"migrations_per_epoch\":{},\"phases\":[",
        r.requests_done, r.migrations_per_epoch
    );
    for (i, p) in r.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, &p.name);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(",\"p50_ps\":{},\"p99_ps\":{}}}", p.p50_ps, p.p99_ps),
        );
    }
    out.push_str("]}");
    out
}

/// Decodes an [`encode_job`] payload back into a [`JobResult`].
fn decode_job(value: &gate::JsonValue) -> Result<JobResult, String> {
    let obj = value.as_obj().ok_or("payload is not an object")?;
    let num = |o: &[(String, gate::JsonValue)], name: &str| {
        gate::json::get(o, name)
            .and_then(gate::JsonValue::as_f64)
            .ok_or_else(|| format!("payload field {name:?} missing or not a number"))
    };
    let requests = num(obj, "requests_done")?;
    if requests < 0.0 || requests.fract() != 0.0 {
        return Err(format!("requests_done = {requests} is not an integer"));
    }
    let phases = gate::json::get(obj, "phases")
        .and_then(gate::JsonValue::as_arr)
        .ok_or("payload field \"phases\" missing or not an array")?
        .iter()
        .map(|p| {
            let o = p
                .as_obj()
                .ok_or_else(|| "phase is not an object".to_string())?;
            Ok(PhaseLatency {
                name: gate::json::get(o, "name")
                    .and_then(gate::JsonValue::as_str)
                    .ok_or_else(|| "phase field \"name\" missing or not a string".to_string())?
                    .to_string(),
                p50_ps: num(o, "p50_ps")?,
                p99_ps: num(o, "p99_ps")?,
            })
        })
        .collect::<Result<Vec<PhaseLatency>, String>>()?;
    Ok(JobResult {
        requests_done: requests as u64,
        migrations_per_epoch: num(obj, "migrations_per_epoch")?,
        phases,
    })
}

fn run_job(harness: &Harness, job: &Job) -> JobResult {
    let mut h = harness.clone();
    h.ablate = job.ablate;
    let Some(scheme) = job.scheme else {
        let report = h.run(Scheme::Baseline, job.workload);
        return JobResult {
            requests_done: report.requests_done,
            migrations_per_epoch: 0.0,
            phases: Vec::new(),
        };
    };
    let hub = (!job.ablate.any()).then(|| Telemetry::new(Default::default()));
    let report = h.run_instrumented(scheme, job.workload, hub.as_ref());
    let phases = hub
        .and_then(|hub| hub.summary())
        .map(|summary| {
            summary
                .histograms
                .iter()
                .filter(|(name, h)| name.starts_with("span.") && h.count > 0)
                .map(|(name, h)| PhaseLatency {
                    name: name.clone(),
                    p50_ps: h.p50,
                    p99_ps: h.p99,
                })
                .collect()
        })
        .unwrap_or_default();
    JobResult {
        requests_done: report.requests_done,
        migrations_per_epoch: report.migrations_per_epoch(),
        phases,
    }
}

/// Times `THROUGHPUT_REPEATS` serial runs of the canary cell against the
/// host clock. Serial on purpose: concurrent cells would contend for cores
/// and shift the timing for no benefit. The simulated work is identical
/// every repeat (deterministic seed), so only the denominator varies.
fn measure_throughput(harness: &Harness) -> ThroughputMetrics {
    let mut per_sec = Vec::with_capacity(THROUGHPUT_REPEATS as usize);
    let mut accesses = 0u64;
    for _ in 0..THROUGHPUT_REPEATS {
        let mut h = harness.clone();
        h.ablate = CostAblation::NONE;
        let start = std::time::Instant::now();
        let report = h.run(THROUGHPUT_SCHEME, THROUGHPUT_WORKLOAD);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        accesses = report.requests_done;
        per_sec.push(report.requests_done as f64 / secs);
    }
    let min = per_sec.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_sec.iter().cloned().fold(0.0f64, f64::max);
    ThroughputMetrics {
        scheme: THROUGHPUT_SCHEME.name().to_string(),
        workload: THROUGHPUT_WORKLOAD.to_string(),
        repeats: THROUGHPUT_REPEATS,
        accesses_per_run: accesses,
        median_accesses_per_sec: gate::median_of(per_sec),
        min_accesses_per_sec: min,
        max_accesses_per_sec: max,
    }
}

/// Measures the multi-channel scaling canary.
///
/// Determinism comes first and is non-negotiable: the `SCALING_CHANNELS`-
/// channel cell is run at 1, 2, and host-parallel shard workers and the
/// three [`aqua_sim::RunReport`]s must be field-for-field identical — a
/// panic here means the sharded merge leaked scheduling order into results
/// and no timing number would be trustworthy. Only then does the stopwatch
/// start: `THROUGHPUT_REPEATS` serial repeats at `shard_workers = 1`
/// (every shard on one worker, the parallelism-free reference) and at one
/// worker per channel, with `scaling_efficiency` the ratio of the two
/// medians. `host_parallelism` is recorded so the gate can tell a genuine
/// scaling collapse from a host that simply has no cores to scale onto.
fn measure_scaling(harness: &Harness) -> ScalingMetrics {
    let mut h = harness.clone();
    h.ablate = CostAblation::NONE;
    h.journal = None;
    h.base = h.base.with_channels(SCALING_CHANNELS);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let parallel_workers = (SCALING_CHANNELS as usize).min(host_parallelism).max(2);

    h.shard_workers = 1;
    let reference = h.run(THROUGHPUT_SCHEME, THROUGHPUT_WORKLOAD);
    for workers in [2, parallel_workers] {
        h.shard_workers = workers;
        let report = h.run(THROUGHPUT_SCHEME, THROUGHPUT_WORKLOAD);
        assert_eq!(
            reference, report,
            "scaling canary: {workers} shard workers changed the report"
        );
    }

    let mut time_at = |workers: usize| -> Vec<f64> {
        h.shard_workers = workers;
        (0..THROUGHPUT_REPEATS)
            .map(|_| {
                let start = std::time::Instant::now();
                let report = h.run(THROUGHPUT_SCHEME, THROUGHPUT_WORKLOAD);
                report.requests_done as f64 / start.elapsed().as_secs_f64().max(1e-9)
            })
            .collect()
    };
    let single = gate::median_of(time_at(1));
    let sharded = gate::median_of(time_at(parallel_workers));

    ScalingMetrics {
        scheme: THROUGHPUT_SCHEME.name().to_string(),
        workload: THROUGHPUT_WORKLOAD.to_string(),
        channels: u64::from(SCALING_CHANNELS),
        repeats: THROUGHPUT_REPEATS,
        accesses_per_run: reference.requests_done,
        single_accesses_per_sec: single,
        sharded_accesses_per_sec: sharded,
        shard_workers: parallel_workers as u64,
        host_parallelism: host_parallelism as u64,
        scaling_efficiency: if single > 0.0 { sharded / single } else { 0.0 },
    }
}

fn measure(inject_pp: f64) -> Result<GateReport, String> {
    let mut harness = Harness::new(T_RH);
    harness.epochs = EPOCHS;
    harness.seed = SEED;
    if let Some(path) = arg("--resume") {
        harness.journal = Some(path.into());
    }

    // Job list: one unmitigated baseline per workload, then four runs
    // (full + three single-cost ablations) per scheme x workload cell.
    let variants = [
        CostAblation::NONE,
        CostAblation::FREE_MIGRATION,
        CostAblation::FREE_LOOKUP,
        CostAblation::FREE_TABLE_TRAFFIC,
    ];
    let mut jobs = Vec::new();
    for &workload in &WORKLOADS {
        jobs.push(Job {
            scheme: None,
            workload,
            ablate: CostAblation::NONE,
        });
        for &scheme in &SCHEMES {
            for &ablate in &variants {
                jobs.push(Job {
                    scheme: Some(scheme),
                    workload,
                    ablate,
                });
            }
        }
    }
    eprintln!(
        "regression gate: {} canary runs on {} workers...",
        jobs.len(),
        harness.jobs
    );
    let journal = harness.open_journal();
    let keys: Vec<journal::CellKey> = jobs.iter().map(|j| job_key(&harness, j)).collect();
    let labels: Vec<String> = jobs
        .iter()
        .map(|j| {
            format!(
                "{}/{}@{}",
                j.scheme.map_or("baseline", Scheme::name),
                j.workload,
                ablate_tag(j.ablate)
            )
        })
        .collect();
    let binding = journal.as_ref().map(|j| supervise::JournalBinding {
        journal: j,
        keys: &keys,
        labels: &labels,
        codec: supervise::Codec {
            encode: encode_job,
            decode: decode_job,
        },
    });
    let supervisor = supervise::Supervisor::default();
    let outcomes = supervise::run_supervised(
        harness.jobs,
        &jobs,
        &supervisor,
        binding.as_ref(),
        |_, job, _attempt| run_job(&harness, job),
    );
    let mut results = Vec::with_capacity(jobs.len());
    for (job, outcome) in jobs.iter().zip(outcomes) {
        let name = job.scheme.map_or("baseline", Scheme::name);
        results.push(
            outcome
                .outcome
                .map_err(|e| format!("{name}/{} failed: {e}", job.workload))?,
        );
    }

    let find = |scheme: Option<Scheme>, workload: &str, ablate: CostAblation| -> &JobResult {
        let idx = jobs
            .iter()
            .position(|j| j.scheme == scheme && j.workload == workload && j.ablate == ablate)
            .expect("job exists by construction");
        &results[idx]
    };

    let mut cells = Vec::new();
    for &workload in &WORKLOADS {
        let base = find(None, workload, CostAblation::NONE).requests_done;
        for &scheme in &SCHEMES {
            let full = find(Some(scheme), workload, CostAblation::NONE);
            let attribution = Attribution::from_counts(AblationCounts {
                baseline: base,
                full: full.requests_done,
                free_migration: find(Some(scheme), workload, CostAblation::FREE_MIGRATION)
                    .requests_done,
                free_lookup: find(Some(scheme), workload, CostAblation::FREE_LOOKUP).requests_done,
                free_table_traffic: find(Some(scheme), workload, CostAblation::FREE_TABLE_TRAFFIC)
                    .requests_done,
            });
            cells.push(CellMetrics {
                scheme: scheme.name().to_string(),
                workload: workload.to_string(),
                slowdown_pct: attribution.slowdown_pct + inject_pp,
                migrations_per_epoch: full.migrations_per_epoch,
                attribution: CellAttribution {
                    migration_pct: attribution.migration_pct,
                    lookup_pct: attribution.lookup_pct,
                    table_traffic_pct: attribution.table_traffic_pct,
                    residual_pct: attribution.residual_pct + inject_pp,
                },
                phases: full.phases.clone(),
            });
        }
    }
    eprintln!(
        "regression gate: timing throughput canary ({THROUGHPUT_REPEATS} repeats, serial)..."
    );
    let throughput = measure_throughput(&harness);
    eprintln!(
        "regression gate: timing scaling canary ({SCALING_CHANNELS} channels, \
         {THROUGHPUT_REPEATS}+{THROUGHPUT_REPEATS} repeats)..."
    );
    let scaling = measure_scaling(&harness);

    Ok(GateReport {
        t_rh: T_RH,
        epochs: EPOCHS,
        seed: SEED,
        telemetry: Telemetry::new(Default::default()).is_enabled(),
        throughput: Some(throughput),
        scaling: Some(scaling),
        cells,
    })
}

fn print_report(report: &GateReport) {
    println!(
        "\n== regression gate canary (T_RH={}, epochs={}, seed={}, telemetry={}) ==",
        report.t_rh, report.epochs, report.seed, report.telemetry
    );
    println!(
        "{:<12} {:<8} {:>9} {:>10} | {:>7} {:>7} {:>7} {:>8}",
        "scheme", "workload", "slow(%)", "migr/ep", "M(%)", "L(%)", "Q(%)", "resid(%)"
    );
    for c in &report.cells {
        println!(
            "{:<12} {:<8} {:>9.3} {:>10.1} | {:>7.3} {:>7.3} {:>7.3} {:>8.3}",
            c.scheme,
            c.workload,
            c.slowdown_pct,
            c.migrations_per_epoch,
            c.attribution.migration_pct,
            c.attribution.lookup_pct,
            c.attribution.table_traffic_pct,
            c.attribution.residual_pct
        );
    }
    for c in &report.cells {
        for p in &c.phases {
            println!(
                "  {}/{} {:<26} p50={:>12.0} ps  p99={:>12.0} ps",
                c.scheme, c.workload, p.name, p.p50_ps, p.p99_ps
            );
        }
    }
    if let Some(t) = &report.throughput {
        println!(
            "throughput canary: {}/{} x{} repeats, {} accesses/run -> \
             median {:.0} accesses/sec (min {:.0}, max {:.0})",
            t.scheme,
            t.workload,
            t.repeats,
            t.accesses_per_run,
            t.median_accesses_per_sec,
            t.min_accesses_per_sec,
            t.max_accesses_per_sec
        );
    }
    if let Some(s) = &report.scaling {
        println!(
            "scaling canary: {}/{} on {} channels, {} shard workers \
             ({} host cores) -> {:.0} vs {:.0} accesses/sec = {:.2}x",
            s.scheme,
            s.workload,
            s.channels,
            s.shard_workers,
            s.host_parallelism,
            s.sharded_accesses_per_sec,
            s.single_accesses_per_sec,
            s.scaling_efficiency
        );
        if s.host_parallelism < s.channels {
            println!(
                "  (host has fewer cores than channels; the {}x floor is not enforced)",
                gate::tolerance::SCALING_MIN_SPEEDUP
            );
        }
    }
}

fn main() {
    let baseline_path = arg("--baseline").unwrap_or_else(|| "BENCH_8.json".into());
    let out_path = arg("--out").unwrap_or_else(|| "target/experiments/BENCH_8.json".into());
    let inject_pp: f64 = match arg("--inject-slowdown").map(|v| v.parse()) {
        None => 0.0,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("--inject-slowdown takes a number (percentage points)");
            std::process::exit(2);
        }
    };
    let inject_throttle: f64 = match arg("--inject-throttle").map(|v| v.parse()) {
        None => 1.0,
        Some(Ok(v)) if v > 0.0 => v,
        Some(_) => {
            eprintln!("--inject-throttle takes a positive throughput divisor");
            std::process::exit(2);
        }
    };

    let mut report = match measure(inject_pp) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("regression gate: canary run failed: {e}");
            std::process::exit(2);
        }
    };
    if let Some(t) = report.throughput.as_mut() {
        t.median_accesses_per_sec /= inject_throttle;
        t.min_accesses_per_sec /= inject_throttle;
        t.max_accesses_per_sec /= inject_throttle;
    }
    print_report(&report);

    if flag("--write-baseline") {
        // An explicit --out redirects the new baseline (e.g. writing
        // BENCH_8.json at the repo root without clobbering the old file).
        let dest = arg("--out").unwrap_or(baseline_path);
        if let Err(e) = std::fs::write(&dest, report.to_json()) {
            eprintln!("regression gate: cannot write {dest}: {e}");
            std::process::exit(2);
        }
        println!("\nwrote new baseline to {dest}");
        return;
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("regression gate: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("\nwrote current metrics to {out_path}");

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "regression gate: cannot read baseline {baseline_path}: {e}\n\
                 (generate one with `regression_gate --write-baseline`)"
            );
            std::process::exit(2);
        }
    };
    let baseline = match GateReport::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("regression gate: malformed baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };

    let failures = gate::compare(&baseline, &report);
    if failures.is_empty() {
        println!(
            "\nregression gate: PASS ({} cells within tolerance)",
            baseline.cells.len()
        );
        return;
    }
    eprintln!("\nregression gate: FAIL");
    for f in &failures {
        eprintln!("  - {f}");
    }
    std::process::exit(1);
}
