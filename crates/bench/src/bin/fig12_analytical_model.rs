//! Figure 12 / Appendix A: the analytical migration-overhead model
//! `r(f) = 2 (1 + 2f) / f`, cross-checked against the simulator.
//!
//! Paper result: RRS performs at least 6x more row migrations than AQUA
//! (`f` = 1), ~9x on average across the 34 workloads (`f` ~= 0.4).

use aqua_analysis::migration_model::{figure12, implied_f, rrs_over_aqua_ratio};
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};

fn main() {
    // The analytical curve.
    let fig = figure12(20);
    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|(f, r)| vec![f2(*f), f2(*r)])
        .collect();
    print_table(
        "Figure 12: analytical r(f) = 2(1+2f)/f (6x at f=1, 9x at f=0.4)",
        &["f", "RRS/AQUA migrations"],
        &rows,
    );
    write_csv("fig12_analytical_model", &["f", "ratio"], &rows);

    // Cross-check against measured migrations on a few hot workloads.
    let harness = Harness::new(1000);
    let workloads: Vec<String> = ["mcf", "blender", "gcc"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let results = harness.run_matrix(&[Scheme::AquaSram, Scheme::Rrs], &workloads);
    results.expect_complete();
    let mut check = Vec::new();
    for workload in &workloads {
        let a = results
            .get(Scheme::AquaSram, workload)
            .migrations_per_epoch();
        let r = results.get(Scheme::Rrs, workload).migrations_per_epoch();
        if a > 0.0 && r / a > 6.0 {
            let f = implied_f(r / a);
            check.push(vec![
                workload.clone(),
                f2(r / a),
                f2(f),
                f2(rrs_over_aqua_ratio(f)),
            ]);
        } else if a > 0.0 {
            check.push(vec![workload.clone(), f2(r / a), "-".into(), "-".into()]);
        }
        eprintln!(
            "{workload}: measured ratio {:.1}",
            if a > 0.0 { r / a } else { f64::NAN }
        );
    }
    print_table(
        "Appendix A cross-check: measured RRS/AQUA ratio and implied f",
        &["workload", "measured ratio", "implied f", "model r(f)"],
        &check,
    );
    write_csv(
        "fig12_crosscheck",
        &["workload", "ratio", "implied_f", "model"],
        &check,
    );
}
