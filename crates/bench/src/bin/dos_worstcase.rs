//! Section VI-C: worst-case (denial-of-service) slowdown, measured by
//! simulation and compared against the closed-form bounds.
//!
//! Paper: AQUA's worst case is 2.95x (one quarantine per bank per 22.5 us,
//! each possibly with an eviction); RRS's is ~11x; Blockhammer's is 1280x.
//! Four cores drive the maximal migration-flood pattern, split across the
//! 16 banks.

use aqua::AquaEngine;
use aqua_analysis::dos::{
    aqua_worst_case_slowdown, blockhammer_worst_case_slowdown, rrs_worst_case_slowdown,
};
use aqua_baselines::{Blockhammer, BlockhammerConfig};
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::Harness;
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::{DdrTiming, DramGeometry};
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{RunReport, SimConfig, Simulation};
use aqua_workload::attack::{Hammer, MigrationFlood};
use aqua_workload::RequestGenerator;

/// One flood generator per core, covering all 16 banks between them.
fn flood_gens(harness: &Harness, threshold: u64) -> Vec<Box<dyn RequestGenerator>> {
    let space = harness.space();
    (0..harness.base.cores)
        .map(|_| Box::new(MigrationFlood::new(&space, 16, threshold)) as Box<dyn RequestGenerator>)
        .collect()
}

fn run<M: Mitigation>(
    harness: &Harness,
    engine: M,
    gens: Vec<Box<dyn RequestGenerator>>,
) -> RunReport {
    let cfg = SimConfig::new(harness.base)
        .epochs(harness.epochs)
        .t_rh(harness.t_rh);
    Simulation::new(cfg, engine, gens).run()
}

fn main() {
    let harness = Harness::new(1000);
    let timing = DdrTiming::ddr4_2400();
    let geometry = DramGeometry::paper_table1();

    // AQUA under the migration flood.
    let baseline = run(
        &harness,
        NoMitigation::new(harness.base.geometry),
        flood_gens(&harness, 500),
    );
    let aqua = run(
        &harness,
        AquaEngine::new(harness.aqua_config()).expect("valid config"),
        flood_gens(&harness, 500),
    );
    let aqua_measured = baseline.requests_done as f64 / aqua.requests_done as f64;
    eprintln!(
        "aqua flood done ({} migrations)",
        aqua.mitigation.row_migrations
    );

    // RRS under the same flood at its lower threshold.
    let rrs_baseline = run(
        &harness,
        NoMitigation::new(harness.base.geometry),
        flood_gens(&harness, 166),
    );
    let rrs = run(
        &harness,
        RrsEngine::new(RrsConfig::for_rowhammer_threshold(1000, &harness.base)),
        flood_gens(&harness, 166),
    );
    let rrs_measured = rrs_baseline.requests_done as f64 / rrs.requests_done as f64;
    eprintln!(
        "rrs flood done ({} migrations)",
        rrs.mitigation.row_migrations
    );

    // Blockhammer under the row-conflict pattern.
    let space = harness.space();
    let conflict = || {
        (0..harness.base.cores)
            .map(|c| Box::new(Hammer::row_conflict(&space, c, 5000)) as Box<dyn RequestGenerator>)
            .collect::<Vec<_>>()
    };
    let bh_baseline = run(
        &harness,
        NoMitigation::new(harness.base.geometry),
        conflict(),
    );
    let bh = run(
        &harness,
        Blockhammer::new(
            BlockhammerConfig::for_rowhammer_threshold(1000),
            harness.base.geometry,
        ),
        conflict(),
    );
    let bh_measured = bh_baseline.requests_done as f64 / bh.requests_done as f64;
    eprintln!("blockhammer conflict done");

    let rows = vec![
        vec![
            "aqua".into(),
            f2(aqua_measured),
            f2(aqua_worst_case_slowdown(&timing, &geometry, 500)),
            "2.95x".into(),
        ],
        vec![
            "rrs".into(),
            f2(rrs_measured),
            f2(rrs_worst_case_slowdown(&timing, &geometry, 166)),
            "11x".into(),
        ],
        vec![
            "blockhammer".into(),
            f2(bh_measured),
            f2(blockhammer_worst_case_slowdown(&timing, 500, 100)),
            "1280x".into(),
        ],
    ];
    print_table(
        "Section VI-C / VII-B: worst-case slowdown under adversarial patterns",
        &["scheme", "measured", "model bound", "paper"],
        &rows,
    );
    write_csv(
        "dos_worstcase",
        &["scheme", "measured", "model", "paper"],
        &rows,
    );
}
