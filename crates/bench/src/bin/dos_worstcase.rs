//! Section VI-C: worst-case (denial-of-service) slowdown, measured by
//! simulation and compared against the closed-form bounds.
//!
//! Paper: AQUA's worst case is 2.95x (one quarantine per bank per 22.5 us,
//! each possibly with an eviction); RRS's is ~11x; Blockhammer's is 1280x.
//! Four cores drive the maximal migration-flood pattern, split across the
//! 16 banks.
//!
//! The six simulations run under the supervision layer; `--resume JOURNAL`
//! (or `AQUA_BENCH_JOURNAL`) checkpoints each as it concludes and replays
//! concluded ones on a re-run (DESIGN.md section 14).

use aqua::AquaEngine;
use aqua_analysis::dos::{
    aqua_worst_case_slowdown, blockhammer_worst_case_slowdown, rrs_worst_case_slowdown,
};
use aqua_baselines::{Blockhammer, BlockhammerConfig};
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{journal, supervise, Harness};
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::{DdrTiming, DramGeometry};
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{RunReport, Simulation};
use aqua_workload::attack::{Hammer, MigrationFlood};
use aqua_workload::RequestGenerator;

/// One flood generator per core, covering all 16 banks between them.
fn flood_gens(harness: &Harness, threshold: u64) -> Vec<Box<dyn RequestGenerator>> {
    let space = harness.space();
    (0..harness.base.cores)
        .map(|_| Box::new(MigrationFlood::new(&space, 16, threshold)) as Box<dyn RequestGenerator>)
        .collect()
}

fn run<M: Mitigation>(
    harness: &Harness,
    tag: &str,
    engine: M,
    gens: Vec<Box<dyn RequestGenerator>>,
) -> RunReport {
    // The shared sim_config path honours the soft/hard deadline knobs.
    Simulation::new(harness.sim_config(tag, "dos-flood"), engine, gens).run()
}

fn main() {
    let mut harness = Harness::new(1000);
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--resume")
        .and_then(|i| args.get(i + 1))
    {
        harness.journal = Some(path.into());
    }
    let timing = DdrTiming::ddr4_2400();
    let geometry = DramGeometry::paper_table1();
    let space = harness.space();
    let conflict = || {
        (0..harness.base.cores)
            .map(|c| Box::new(Hammer::row_conflict(&space, c, 5000)) as Box<dyn RequestGenerator>)
            .collect::<Vec<_>>()
    };

    // Each attacked scheme and its matching unmitigated baseline is an
    // independent simulation; fan all six out on the worker pool.
    let cells = [
        "aqua-base",
        "aqua",
        "rrs-base",
        "rrs",
        "blockhammer-base",
        "blockhammer",
    ];
    let journal = harness.open_journal();
    let keys: Vec<journal::CellKey> = cells
        .iter()
        .map(|&tag| harness.cell_key("dos_worstcase", tag, "dos-flood"))
        .collect();
    let labels: Vec<String> = cells.iter().map(|&t| t.to_string()).collect();
    let binding = journal.as_ref().map(|j| supervise::JournalBinding {
        journal: j,
        keys: &keys,
        labels: &labels,
        codec: supervise::Codec {
            encode: |r: &RunReport| journal::report_to_json(r),
            decode: journal::report_from_json,
        },
    });
    let supervisor = supervise::Supervisor::default();
    let reports = supervise::run_supervised(
        harness.jobs,
        &cells,
        &supervisor,
        binding.as_ref(),
        |_, &tag, _attempt| {
            let report = match tag {
                "aqua-base" => run(
                    &harness,
                    tag,
                    NoMitigation::new(harness.base.geometry),
                    flood_gens(&harness, 500),
                ),
                "aqua" => run(
                    &harness,
                    tag,
                    AquaEngine::new(harness.aqua_config()).expect("valid config"),
                    flood_gens(&harness, 500),
                ),
                "rrs-base" => run(
                    &harness,
                    tag,
                    NoMitigation::new(harness.base.geometry),
                    flood_gens(&harness, 166),
                ),
                "rrs" => run(
                    &harness,
                    tag,
                    RrsEngine::new(RrsConfig::for_rowhammer_threshold(1000, &harness.base)),
                    flood_gens(&harness, 166),
                ),
                "blockhammer-base" => run(
                    &harness,
                    tag,
                    NoMitigation::new(harness.base.geometry),
                    conflict(),
                ),
                "blockhammer" => run(
                    &harness,
                    tag,
                    Blockhammer::new(
                        BlockhammerConfig::for_rowhammer_threshold(1000),
                        harness.base.geometry,
                    ),
                    conflict(),
                ),
                _ => unreachable!(),
            };
            eprintln!(
                "{tag} done ({} migrations)",
                report.mitigation.row_migrations
            );
            report
        },
    );
    let report = |tag: &str| {
        let i = cells.iter().position(|&t| t == tag).unwrap();
        reports[i]
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{tag} failed: {e}"))
    };
    let measured = |tag: &str| {
        report(&format!("{tag}-base")).requests_done as f64 / report(tag).requests_done as f64
    };

    let rows = vec![
        vec![
            "aqua".into(),
            f2(measured("aqua")),
            f2(aqua_worst_case_slowdown(&timing, &geometry, 500)),
            "2.95x".into(),
        ],
        vec![
            "rrs".into(),
            f2(measured("rrs")),
            f2(rrs_worst_case_slowdown(&timing, &geometry, 166)),
            "11x".into(),
        ],
        vec![
            "blockhammer".into(),
            f2(measured("blockhammer")),
            f2(blockhammer_worst_case_slowdown(&timing, 500, 100)),
            "1280x".into(),
        ],
    ];
    print_table(
        "Section VI-C / VII-B: worst-case slowdown under adversarial patterns",
        &["scheme", "measured", "model bound", "paper"],
        &rows,
    );
    write_csv(
        "dos_worstcase",
        &["scheme", "measured", "model", "paper"],
        &rows,
    );
}
