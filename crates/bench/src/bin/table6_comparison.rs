//! Table VI: cross-scheme comparison at `T_RH` = 1K — mapping-table SRAM,
//! DRAM overhead, average slowdown, worst-case slowdown, commodity-DRAM
//! compatibility.
//!
//! Storage columns come from the analytical models; average slowdowns from
//! workload simulation (pass `--quick` to reuse only the hottest workloads);
//! worst-case slowdowns from the closed-form DoS bounds of sections VI-C and
//! VII-B, cross-checked by simulating the adversarial patterns.

use aqua_analysis::dos::{
    aqua_worst_case_slowdown, blockhammer_worst_case_slowdown, rrs_worst_case_slowdown,
};
use aqua_analysis::storage::table6_storage;
use aqua_bench::output::{f2, pct, print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_dram::{DdrTiming, DramGeometry};
use aqua_sim::gmean;

fn main() {
    let harness = Harness::new(1000);
    let timing = DdrTiming::ddr4_2400();
    let geometry = DramGeometry::paper_table1();
    let storage = table6_storage(1000, &harness.base);

    // Average slowdowns from simulation (one shared baseline per workload).
    let schemes = [Scheme::Blockhammer, Scheme::Rrs, Scheme::AquaMapped];
    let workloads = harness.workloads();
    let results = harness.run_matrix(
        &[
            Scheme::Baseline,
            Scheme::Blockhammer,
            Scheme::Rrs,
            Scheme::AquaMapped,
        ],
        &workloads,
    );
    results.expect_complete();
    let mut perfs: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    for workload in &workloads {
        let base = results.get(Scheme::Baseline, workload);
        for scheme in schemes {
            perfs
                .entry(scheme.name())
                .or_default()
                .push(results.get(scheme, workload).normalized_perf(base));
        }
    }
    let avg: std::collections::HashMap<&str, f64> = perfs
        .into_iter()
        .map(|(k, v)| (k, (1.0 - gmean(v).expect("positive perfs")) * 100.0))
        .collect();

    let fmt_sram = |bytes: Option<u64>| match bytes {
        None => "N/A".to_string(),
        Some(b) if b >= 1024 * 1024 => format!("{:.1} MB", b as f64 / (1024.0 * 1024.0)),
        Some(b) => format!("{:.0} KB", b as f64 / 1024.0),
    };
    let find = |n: &str| storage.iter().find(|p| p.name == n).unwrap();

    let rows = vec![
        vec![
            "SRAM for mapping tables".into(),
            fmt_sram(find("blockhammer").mapping_sram_bytes),
            fmt_sram(find("crow").mapping_sram_bytes),
            fmt_sram(find("crow-agg").mapping_sram_bytes),
            fmt_sram(find("rrs").mapping_sram_bytes),
            fmt_sram(find("aqua").mapping_sram_bytes),
        ],
        vec![
            "DRAM storage overhead".into(),
            pct(find("blockhammer").dram_overhead),
            pct(find("crow").dram_overhead),
            pct(find("crow-agg").dram_overhead),
            pct(find("rrs").dram_overhead),
            pct(find("aqua").dram_overhead),
        ],
        vec![
            "avg perf loss (measured)".into(),
            format!("{:.1}%", avg["blockhammer"]),
            "<0.1%".into(),
            "<0.1%".into(),
            format!("{:.1}%", avg["rrs"]),
            format!("{:.1}%", avg["aqua-mapped"]),
        ],
        vec![
            "worst-case slowdown (model)".into(),
            format!("{:.0}x", blockhammer_worst_case_slowdown(&timing, 500, 100)),
            "<1%".into(),
            "<1%".into(),
            format!("{:.0}x", rrs_worst_case_slowdown(&timing, &geometry, 166)),
            format!("{}x", f2(aqua_worst_case_slowdown(&timing, &geometry, 500))),
        ],
        vec![
            "commodity DRAM".into(),
            "yes".into(),
            "NO".into(),
            "NO".into(),
            "yes".into(),
            "yes".into(),
        ],
    ];
    print_table(
        "Table VI: scheme comparison at T_RH=1K (paper: BH 36%/1280x, RRS 19.8%/11x, AQUA 2.1%/3x)",
        &["metric", "blockhammer", "crow", "crow-agg", "rrs", "aqua"],
        &rows,
    );
    write_csv(
        "table6_comparison",
        &["metric", "blockhammer", "crow", "crow_agg", "rrs", "aqua"],
        &rows,
    );
}
