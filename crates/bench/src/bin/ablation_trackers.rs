//! Ablation: AQUA with different aggressor-row trackers (Appendix B).
//!
//! The tracker choice is orthogonal to AQUA's design; this sweep runs the
//! same workloads with the Misra-Gries (paper default), Hydra-style, CRA-
//! style, and idealized exact trackers, comparing performance, migrations
//! (spurious mitigations show up here), SRAM footprint, and the security
//! verdict.

use aqua::{AquaEngine, TrackerKind};
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{pool, Harness, Scheme};
use aqua_sim::gmean;

fn main() {
    let harness = Harness::new(1000);
    let workloads = harness.workloads();
    // One shared set of baseline runs; only the tracker varies per sweep.
    let bases = harness.run_matrix(&[Scheme::Baseline], &workloads);
    bases.expect_complete();
    let trackers = [
        ("misra-gries", TrackerKind::MisraGries),
        ("hydra", TrackerKind::Hydra),
        ("cra", TrackerKind::Cra),
        ("exact", TrackerKind::Exact),
    ];
    let mut rows = Vec::new();
    for (name, kind) in trackers {
        let outcomes = pool::run_indexed(harness.jobs, &workloads, |_, workload| {
            let mut cfg = harness.aqua_config();
            cfg.tracker = kind;
            let engine = AquaEngine::new(cfg).expect("valid config");
            let (report, engine) = harness.run_engine(engine, workload, None);
            let perf = report.normalized_perf(bases.get(Scheme::Baseline, workload));
            (
                perf,
                report.migrations_per_epoch(),
                report.oracle.rows_over_trh,
                engine.tracker_sram_bits(),
            )
        });
        let mut perfs = Vec::new();
        let mut migrations = 0.0;
        let mut over_trh = 0u64;
        let mut sram_bits = 0u64;
        let mut runs = 0u32;
        for (workload, outcome) in workloads.iter().zip(outcomes) {
            let (perf, migs, over, bits) =
                outcome.unwrap_or_else(|e| panic!("{name}/{workload} failed: {e}"));
            perfs.push(perf);
            migrations += migs;
            over_trh += over;
            sram_bits = bits;
            runs += 1;
        }
        rows.push(vec![
            name.to_string(),
            f2(gmean(perfs).expect("positive perfs")),
            format!("{:.0}", migrations / runs as f64),
            format!("{} KB", sram_bits / 8 / 1024),
            over_trh.to_string(),
        ]);
        eprintln!("{name} swept");
    }
    print_table(
        "Tracker ablation at T_RH=1K (Appendix B: the mitigation is tracker-agnostic)",
        &[
            "tracker",
            "gmean perf",
            "migrations/epoch",
            "tracker SRAM",
            "rows>T_RH",
        ],
        &rows,
    );
    write_csv(
        "ablation_trackers",
        &["tracker", "perf", "migrations", "sram", "rows_over_trh"],
        &rows,
    );
}
