//! Ablation: AQUA with different aggressor-row trackers (Appendix B).
//!
//! The tracker choice is orthogonal to AQUA's design; this sweep runs the
//! same workloads with the Misra-Gries (paper default), Hydra-style, CRA-
//! style, and idealized exact trackers, comparing performance, migrations
//! (spurious mitigations show up here), SRAM footprint, and the security
//! verdict.

use aqua::{AquaEngine, TrackerKind};
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_sim::{gmean, SimConfig, Simulation};

fn main() {
    let harness = Harness::new(1000);
    let trackers = [
        ("misra-gries", TrackerKind::MisraGries),
        ("hydra", TrackerKind::Hydra),
        ("cra", TrackerKind::Cra),
        ("exact", TrackerKind::Exact),
    ];
    let mut rows = Vec::new();
    for (name, kind) in trackers {
        let mut perfs = Vec::new();
        let mut migrations = 0.0;
        let mut over_trh = 0u64;
        let mut sram_bits = 0u64;
        let mut runs = 0u32;
        for workload in harness.workloads() {
            let base = harness.run(Scheme::Baseline, &workload);
            let mut cfg = harness.aqua_config();
            cfg.tracker = kind;
            let engine = AquaEngine::new(cfg).expect("valid config");
            let sim_cfg = SimConfig::new(harness.base)
                .epochs(harness.epochs)
                .t_rh(harness.t_rh);
            let mut sim = Simulation::new(sim_cfg, engine, harness.generators(&workload));
            let mut report = sim.run();
            report.workload = workload.clone();
            perfs.push(report.normalized_perf(&base));
            migrations += report.migrations_per_epoch();
            over_trh += report.oracle.rows_over_trh;
            sram_bits = sim.mitigation().tracker_sram_bits();
            runs += 1;
        }
        rows.push(vec![
            name.to_string(),
            f2(gmean(perfs).expect("positive perfs")),
            format!("{:.0}", migrations / runs as f64),
            format!("{} KB", sram_bits / 8 / 1024),
            over_trh.to_string(),
        ]);
        eprintln!("{name} swept");
    }
    print_table(
        "Tracker ablation at T_RH=1K (Appendix B: the mitigation is tracker-agnostic)",
        &[
            "tracker",
            "gmean perf",
            "migrations/epoch",
            "tracker SRAM",
            "rows>T_RH",
        ],
        &rows,
    );
    write_csv(
        "ablation_trackers",
        &["tracker", "perf", "migrations", "sram", "rows_over_trh"],
        &rows,
    );
}
