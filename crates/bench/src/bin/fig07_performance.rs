//! Figure 7: normalized performance of AQUA (SRAM tables) and RRS vs the
//! unmitigated baseline at `T_RH` = 1K, over 18 SPEC + 16 mix workloads.
//!
//! Paper result: AQUA loses 1.8% on average (gmean over 34), RRS 19.8%.

use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_sim::gmean;

fn main() {
    let harness = Harness::new(1000);
    let workloads = harness.workloads();
    let results = harness.run_matrix(
        &[Scheme::Baseline, Scheme::AquaSram, Scheme::Rrs],
        &workloads,
    );
    results.expect_complete();
    let mut rows = Vec::new();
    let mut aqua_perf = Vec::new();
    let mut rrs_perf = Vec::new();
    for workload in &workloads {
        let base = results.get(Scheme::Baseline, workload);
        let a = results
            .get(Scheme::AquaSram, workload)
            .normalized_perf(base);
        let r = results.get(Scheme::Rrs, workload).normalized_perf(base);
        aqua_perf.push(a);
        rrs_perf.push(r);
        rows.push(vec![workload.clone(), f2(a), f2(r)]);
    }
    rows.push(vec![
        "gmean".into(),
        f2(gmean(aqua_perf.iter().copied()).expect("positive perfs")),
        f2(gmean(rrs_perf.iter().copied()).expect("positive perfs")),
    ]);
    print_table(
        "Figure 7: normalized performance at T_RH=1K (paper gmean: AQUA 0.982, RRS 0.802)",
        &["workload", "aqua", "rrs"],
        &rows,
    );
    write_csv("fig07_performance", &["workload", "aqua", "rrs"], &rows);
}
