//! Table IV: AQUA vs victim refresh.
//!
//! Paper: victim refresh has near-zero slowdown and stops classic Rowhammer,
//! but Half-Double's far aggressors defeat it; AQUA stops both. This binary
//! runs the actual attack patterns at full scale (`T_RH` = 1K, 64 ms epochs)
//! and reports whether each defence kept the targeted victim safe, plus the
//! average-workload slowdown of both schemes.

use aqua::AquaEngine;
use aqua_baselines::{VictimRefresh, VictimRefreshConfig};
use aqua_bench::output::{print_table, write_csv};
use aqua_bench::{pool, Harness, Scheme};
use aqua_dram::mitigation::Mitigation;
use aqua_dram::{BankId, RowAddr};
use aqua_sim::{gmean, SimConfig, Simulation};
use aqua_workload::attack::Hammer;
use aqua_workload::RequestGenerator;

const VICTIM_ROW: u32 = 5000;

fn attack_outcome<M: Mitigation>(harness: &Harness, engine: M, pattern: Hammer) -> bool {
    let cfg = SimConfig::new(harness.base)
        .epochs(harness.epochs)
        .t_rh(harness.t_rh);
    let mut sim = Simulation::new(
        cfg,
        engine,
        [Box::new(pattern) as Box<dyn RequestGenerator>],
    );
    sim.run();
    sim.oracle().is_flippable(RowAddr {
        bank: BankId::new(0),
        row: VICTIM_ROW,
    })
}

fn main() {
    let harness = Harness::new(1000);
    let space = harness.space();
    let vr = || {
        VictimRefresh::new(
            VictimRefreshConfig::for_rowhammer_threshold(harness.t_rh),
            harness.base.geometry,
        )
    };
    let aqua = || AquaEngine::new(harness.aqua_config()).expect("valid config");

    let classic = || Hammer::double_sided(&space, 0, VICTIM_ROW);
    let half_double = || Hammer::half_double(&space, 0, VICTIM_ROW);

    // The four attack cells are independent simulations; fan them out on the
    // same pool the workload matrix uses.
    let attacks = ["vr-classic", "vr-hd", "aqua-classic", "aqua-hd"];
    let outcomes = pool::run_indexed(harness.jobs, &attacks, |_, &tag| {
        let flipped = match tag {
            "vr-classic" => attack_outcome(&harness, vr(), classic()),
            "vr-hd" => attack_outcome(&harness, vr(), half_double()),
            "aqua-classic" => attack_outcome(&harness, aqua(), classic()),
            "aqua-hd" => attack_outcome(&harness, aqua(), half_double()),
            _ => unreachable!(),
        };
        eprintln!("attack {tag} done");
        flipped
    });
    let outcome = |tag: &str| {
        let i = attacks.iter().position(|&t| t == tag).unwrap();
        *outcomes[i]
            .as_ref()
            .unwrap_or_else(|e| panic!("attack {tag} failed: {e}"))
    };
    let (vr_classic, vr_hd) = (outcome("vr-classic"), outcome("vr-hd"));
    let (aqua_classic, aqua_hd) = (outcome("aqua-classic"), outcome("aqua-hd"));

    // Average slowdown over the workloads (victim refresh < 0.2% in paper).
    let workloads = harness.workloads();
    let results = harness.run_matrix(
        &[Scheme::Baseline, Scheme::VictimRefresh, Scheme::AquaSram],
        &workloads,
    );
    results.expect_complete();
    let mut vr_perf = Vec::new();
    let mut aqua_perf = Vec::new();
    for workload in &workloads {
        let base = results.get(Scheme::Baseline, workload);
        vr_perf.push(
            results
                .get(Scheme::VictimRefresh, workload)
                .normalized_perf(base),
        );
        aqua_perf.push(
            results
                .get(Scheme::AquaSram, workload)
                .normalized_perf(base),
        );
    }
    let defended = |flipped: bool| if flipped { "NO (bit flip)" } else { "yes" }.to_string();
    let rows = vec![
        vec![
            "slowdown (gmean)".into(),
            format!(
                "{:.1}%",
                (1.0 - gmean(vr_perf).expect("positive perfs")) * 100.0
            ),
            format!(
                "{:.1}%",
                (1.0 - gmean(aqua_perf).expect("positive perfs")) * 100.0
            ),
        ],
        vec![
            "mitigates classic Rowhammer".into(),
            defended(vr_classic),
            defended(aqua_classic),
        ],
        vec![
            "mitigates Half-Double".into(),
            defended(vr_hd),
            defended(aqua_hd),
        ],
        vec![
            "works without DRAM mapping".into(),
            "no".into(),
            "yes".into(),
        ],
    ];
    print_table(
        "Table IV: victim refresh vs AQUA (paper: <0.2% vs 2.1%; VR fails Half-Double)",
        &["attribute", "victim-refresh", "aqua"],
        &rows,
    );
    write_csv(
        "table4_victim_refresh",
        &["attribute", "victim_refresh", "aqua"],
        &rows,
    );
}
