//! Figure 9: AQUA with SRAM tables vs memory-mapped tables.
//!
//! Paper result: 1.8% average slowdown with SRAM tables, 2.1% with
//! memory-mapped tables — the 4x SRAM saving costs almost nothing because
//! the bloom filter and FPT-Cache absorb nearly every lookup.

use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_sim::gmean;

fn main() {
    let harness = Harness::new(1000);
    let workloads = harness.workloads();
    let results = harness.run_matrix(
        &[Scheme::Baseline, Scheme::AquaSram, Scheme::AquaMapped],
        &workloads,
    );
    results.expect_complete();
    let mut rows = Vec::new();
    let (mut sram_perf, mut mapped_perf) = (Vec::new(), Vec::new());
    for workload in &workloads {
        let base = results.get(Scheme::Baseline, workload);
        let s = results
            .get(Scheme::AquaSram, workload)
            .normalized_perf(base);
        let m = results
            .get(Scheme::AquaMapped, workload)
            .normalized_perf(base);
        sram_perf.push(s);
        mapped_perf.push(m);
        rows.push(vec![workload.clone(), f2(s), f2(m)]);
    }
    rows.push(vec![
        "gmean".into(),
        f2(gmean(sram_perf).expect("positive perfs")),
        f2(gmean(mapped_perf).expect("positive perfs")),
    ]);
    print_table(
        "Figure 9: AQUA SRAM vs memory-mapped tables (paper gmean: 0.982 vs 0.979)",
        &["workload", "aqua-sram", "aqua-mapped"],
        &rows,
    );
    write_csv(
        "fig09_memory_mapped",
        &["workload", "aqua_sram", "aqua_mapped"],
        &rows,
    );
}
