//! Figure 9: AQUA with SRAM tables vs memory-mapped tables.
//!
//! Paper result: 1.8% average slowdown with SRAM tables, 2.1% with
//! memory-mapped tables — the 4x SRAM saving costs almost nothing because
//! the bloom filter and FPT-Cache absorb nearly every lookup.

use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_sim::gmean;

fn main() {
    let harness = Harness::new(1000);
    let mut rows = Vec::new();
    let (mut sram_perf, mut mapped_perf) = (Vec::new(), Vec::new());
    for workload in harness.workloads() {
        let base = harness.run(Scheme::Baseline, &workload);
        let sram = harness.run(Scheme::AquaSram, &workload);
        let mapped = harness.run(Scheme::AquaMapped, &workload);
        let s = sram.normalized_perf(&base);
        let m = mapped.normalized_perf(&base);
        sram_perf.push(s);
        mapped_perf.push(m);
        rows.push(vec![workload.clone(), f2(s), f2(m)]);
        eprintln!("{workload}: sram {s:.3} mapped {m:.3}");
    }
    rows.push(vec![
        "gmean".into(),
        f2(gmean(sram_perf).expect("positive perfs")),
        f2(gmean(mapped_perf).expect("positive perfs")),
    ]);
    print_table(
        "Figure 9: AQUA SRAM vs memory-mapped tables (paper gmean: 0.982 vs 0.979)",
        &["workload", "aqua-sram", "aqua-mapped"],
        &rows,
    );
    write_csv(
        "fig09_memory_mapped",
        &["workload", "aqua_sram", "aqua_mapped"],
        &rows,
    );
}
