//! Host-time profiler over a canary simulation matrix.
//!
//! ```text
//! profile [--scheme NAME] [--workload NAME] [--trh N] [--epochs N]
//!         [--channels N] [--shard-workers N] [--folded FILE] [--jsonl FILE]
//! ```
//!
//! Runs the selected `(scheme, workload)` cell through the instrumented
//! matrix runner with a telemetry hub attached, then reports **where the
//! host wallclock went** — not simulated time, see DESIGN.md §12 — across
//! the coarse phases the stack instruments (`bench.setup`/`run`/`merge`,
//! `sim.run` > `sim.epoch`, `sim.refresh_drain`, `sim.epoch_end` >
//! `aqua.end_epoch`, `bench.csv`):
//!
//! - a per-phase table on stdout: call count, total/self time, min/max,
//!   and share of the total host wallclock;
//! - **folded-stacks** text (default `target/experiments/profile.folded`),
//!   one `path self_ns` line per phase path, directly consumable by
//!   `flamegraph.pl` or `inferno-flamegraph`;
//! - the same data as JSONL (default `target/experiments/profile.jsonl`)
//!   plus a trailer record with the throughput metrics;
//! - a CSV via the instrumented writer, so the CSV write itself lands in
//!   the hub as a `bench.csv` phase.
//!
//! With `--channels N > 1` the cell runs through the sharded engine
//! (`--shard-workers` caps the worker pool, 0 = one per core) and every
//! shard's phases come back under `sim.sharded;shard<i>;…`, so the table
//! shows each channel's hot loop separately. A **shard-imbalance summary**
//! follows: per-shard wallclock (summed over that shard's merged root
//! phases), min/median/max, and the max/median ratio — the number that says
//! whether a parallel run is gated on one slow channel.
//!
//! Defaults: aqua-sram on mcf, `T_RH=1000`, 1 epoch, 1 channel. Built
//! without the `telemetry` feature the binary still runs the simulation but
//! prints a note and exits 0 — there is nothing to profile, by design (the
//! phase guards compile to nothing).

use std::fs::File;
use std::io::{BufWriter, Write};

use aqua_bench::output::write_csv_instrumented;
use aqua_bench::{Harness, Scheme};
use aqua_telemetry::{PhaseStats, Telemetry};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Nesting depth of a `;`-joined phase path (root = 0).
fn depth(path: &str) -> usize {
    path.matches(';').count()
}

/// The leaf phase name of a `;`-joined path.
fn leaf(path: &str) -> &str {
    path.rsplit(';').next().unwrap_or(path)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn print_phase_table(paths: &[(String, PhaseStats)], host_ns: u64) {
    println!(
        "\n{:<34} {:>8} {:>12} {:>12} {:>11} {:>11} {:>7}",
        "phase", "count", "total(ms)", "self(ms)", "min(us)", "max(us)", "self%"
    );
    for (path, stats) in paths {
        let label = format!("{}{}", "  ".repeat(depth(path)), leaf(path));
        let share = if host_ns > 0 {
            stats.self_ns() as f64 / host_ns as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<34} {:>8} {:>12.3} {:>12.3} {:>11.1} {:>11.1} {:>6.1}%",
            label,
            stats.count,
            ms(stats.total_ns),
            ms(stats.self_ns()),
            stats.min_ns as f64 / 1e3,
            stats.max_ns as f64 / 1e3,
            share
        );
    }
}

fn main() {
    let scheme = match arg("--scheme").as_deref().unwrap_or("aqua-sram") {
        "baseline" => Scheme::Baseline,
        "aqua-sram" => Scheme::AquaSram,
        "aqua-mapped" => Scheme::AquaMapped,
        "rrs" => Scheme::Rrs,
        "victim-refresh" => Scheme::VictimRefresh,
        "blockhammer" => Scheme::Blockhammer,
        other => {
            eprintln!("unknown scheme {other}");
            std::process::exit(2);
        }
    };
    let workload = arg("--workload").unwrap_or_else(|| "mcf".into());
    let t_rh: u64 = arg("--trh").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let folded_path = arg("--folded").unwrap_or_else(|| "target/experiments/profile.folded".into());
    let jsonl_path = arg("--jsonl").unwrap_or_else(|| "target/experiments/profile.jsonl".into());

    let channels: u32 = arg("--channels").and_then(|v| v.parse().ok()).unwrap_or(1);
    if channels == 0 {
        eprintln!("--channels takes a positive channel count");
        std::process::exit(2);
    }

    let mut harness = Harness::new(t_rh);
    harness.epochs = arg("--epochs").and_then(|v| v.parse().ok()).unwrap_or(1);
    harness.base = harness.base.with_channels(channels);
    harness.shard_workers = arg("--shard-workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let hub = Telemetry::new(Default::default());
    println!(
        "profiling {} on {workload} at T_RH={t_rh} for {} epoch(s), {channels} channel(s)...",
        scheme.name(),
        harness.epochs
    );
    let results =
        harness.run_matrix_instrumented(&[scheme], std::slice::from_ref(&workload), Some(&hub));
    let report = results
        .expect_complete()
        .reports()
        .next()
        .expect("one cell");
    println!(
        "simulation done: {} requests completed",
        report.requests_done
    );

    let wall = hub
        .summary()
        .and_then(|summary| summary.wallclock)
        .filter(|_| hub.is_enabled());
    let Some(wall) = wall else {
        println!(
            "built without the `telemetry` feature: phase guards compile \
             to nothing, so there is no host-time profile to report"
        );
        return;
    };

    print_phase_table(&wall.paths, wall.host_wallclock_ns);
    // Per-job sim phases merge back as *sibling* roots of the coordinator's
    // bench.* phases, so — exactly like perf samples folded across threads —
    // root totals sum CPU-side time and can exceed elapsed wallclock.
    println!(
        "\nhost time      : {:.3} ms across {} phase paths (summed over threads)",
        ms(wall.host_wallclock_ns),
        wall.paths.len()
    );
    println!("accesses       : {}", wall.accesses_simulated);
    println!(
        "throughput     : {:.0} accesses per host-second",
        wall.accesses_per_sec
    );
    print_shard_imbalance(&wall.paths);

    // CSV through the instrumented writer: the write itself records a
    // `bench.csv` phase into the hub (visible on the *next* profile run or
    // to any longer-lived consumer of this hub).
    let rows: Vec<Vec<String>> = wall
        .paths
        .iter()
        .map(|(path, s)| {
            vec![
                path.clone(),
                s.count.to_string(),
                s.total_ns.to_string(),
                s.self_ns().to_string(),
                s.min_ns.to_string(),
                s.max_ns.to_string(),
            ]
        })
        .collect();
    write_csv_instrumented(
        &hub,
        "profile",
        &["path", "count", "total_ns", "self_ns", "min_ns", "max_ns"],
        &rows,
    );

    let mut folded = create_output(&folded_path);
    wall.write_folded(&mut folded).expect("write folded stacks");
    folded.flush().expect("flush folded stacks");
    println!("wrote {folded_path}");

    let mut jsonl = create_output(&jsonl_path);
    wall.write_jsonl(&mut jsonl).expect("write profile JSONL");
    jsonl.flush().expect("flush profile JSONL");
    println!("wrote {jsonl_path}");

    println!("render a flamegraph with: flamegraph.pl {folded_path} > profile.svg");
}

/// Per-shard wallclock and imbalance from the merged phase tree.
///
/// Each shard's phases come back under `sim.sharded;shard<i>;…`; a shard's
/// wallclock is the sum of its merged *root* phases (direct children of the
/// shard prefix), which is how the coordinator's own `sim.sharded` span
/// would see it if the shards ran serially. Prints nothing on a
/// single-channel profile (no shard prefixes in the tree).
fn print_shard_imbalance(paths: &[(String, PhaseStats)]) {
    let mut per_shard: Vec<(String, u64)> = Vec::new();
    for (path, stats) in paths {
        let Some(rest) = path.strip_prefix("sim.sharded;") else {
            continue;
        };
        let Some((shard, tail)) = rest.split_once(';') else {
            continue;
        };
        if tail.contains(';') {
            continue; // not a shard-root phase; already counted in its root
        }
        match per_shard.iter_mut().find(|(name, _)| name == shard) {
            Some((_, ns)) => *ns += stats.total_ns,
            None => per_shard.push((shard.to_string(), stats.total_ns)),
        }
    }
    if per_shard.is_empty() {
        return;
    }
    println!("\nshard imbalance ({} shards):", per_shard.len());
    for (shard, ns) in &per_shard {
        println!("  {:<10} {:>12.3} ms", shard, ms(*ns));
    }
    let mut sorted: Vec<u64> = per_shard.iter().map(|&(_, ns)| ns).collect();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let ratio = if median > 0 {
        max as f64 / median as f64
    } else {
        0.0
    };
    println!(
        "  min {:.3} ms, median {:.3} ms, max {:.3} ms -> max/median {:.2}x",
        ms(min),
        ms(median),
        ms(max),
        ratio
    );
}

fn create_output(path: &str) -> BufWriter<File> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    BufWriter::new(File::create(path).expect("create profile output file"))
}
