//! Figure 6: row migrations per 64 ms epoch, AQUA vs RRS, at `T_RH` = 1K.
//!
//! Paper result: AQUA performs 1099 migrations per epoch on average, RRS
//! 9935 — a 9x reduction (the Appendix A model explains the ratio).

use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};

fn main() {
    let harness = Harness::new(1000);
    let workloads = harness.workloads();
    let results = harness.run_matrix(&[Scheme::AquaSram, Scheme::Rrs], &workloads);
    results.expect_complete();
    let mut rows = Vec::new();
    let mut aqua_total = 0.0;
    let mut rrs_total = 0.0;
    for workload in &workloads {
        let a = results
            .get(Scheme::AquaSram, workload)
            .migrations_per_epoch();
        let r = results.get(Scheme::Rrs, workload).migrations_per_epoch();
        aqua_total += a;
        rrs_total += r;
        rows.push(vec![
            workload.clone(),
            f2(a),
            f2(r),
            if a > 0.0 { f2(r / a) } else { "-".into() },
        ]);
    }
    let n = workloads.len() as f64;
    let (a_avg, r_avg) = (aqua_total / n, rrs_total / n);
    rows.push(vec![
        "average".into(),
        f2(a_avg),
        f2(r_avg),
        if a_avg > 0.0 {
            f2(r_avg / a_avg)
        } else {
            "-".into()
        },
    ]);
    print_table(
        "Figure 6: row migrations per 64 ms at T_RH=1K (paper avg: AQUA 1099, RRS 9935, 9x)",
        &["workload", "aqua", "rrs", "rrs/aqua"],
        &rows,
    );
    write_csv(
        "fig06_migrations",
        &["workload", "aqua", "rrs", "rrs_over_aqua"],
        &rows,
    );
}
