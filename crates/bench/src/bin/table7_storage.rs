//! Table VII: total per-rank SRAM including trackers (Appendix B), plus the
//! section V-H power estimates (`--power`).
//!
//! Paper: RRS-MG 2870 KB, AQUA-MG 437 KB, RRS-Hydra 2502 KB, AQUA-Hydra
//! 71 KB; power 13.6 mW SRAM + ~8.5 mW DRAM for AQUA.

use aqua_analysis::power::aqua_power;
use aqua_analysis::storage::table7;
use aqua_bench::output::{f2, print_table, write_csv};

fn storage_table() {
    let rows: Vec<Vec<String>> = table7()
        .iter()
        .map(|(name, b)| {
            vec![
                name.to_string(),
                format!("{} KB", b.tracker_bytes / 1024),
                format!("{} KB", b.mapping_bytes / 1024),
                format!("{} KB", b.buffer_bytes / 1024),
                format!("{} KB", b.total() / 1024),
            ]
        })
        .collect();
    print_table(
        "Table VII: SRAM per rank incl. tracker (paper totals: 2870/437/2502/71 KB)",
        &["configuration", "tracker", "mapping", "buffers", "total"],
        &rows,
    );
    write_csv(
        "table7_storage",
        &[
            "config",
            "tracker_kb",
            "mapping_kb",
            "buffer_kb",
            "total_kb",
        ],
        &rows,
    );
}

fn power_table() {
    // The paper's design point: 16 KB bloom, 16 KB FPT-Cache, 8 KB copy
    // buffer, 1099 migrations per 64 ms (the Figure 6 average).
    let p = aqua_power(16.0, 16.0, 8.0, 1099.0);
    let rows = vec![
        vec!["bloom filter".into(), f2(p.bloom_mw)],
        vec!["FPT-Cache".into(), f2(p.fpt_cache_mw)],
        vec!["copy buffer".into(), f2(p.copy_buffer_mw)],
        vec!["SRAM total".into(), f2(p.sram_mw())],
        vec!["DRAM (migrations)".into(), f2(p.dram_mw)],
        vec!["total".into(), f2(p.total_mw())],
    ];
    print_table(
        "Section V-H power (paper: 5.4 + 5.4 + 2.8 = 13.6 mW SRAM, 8.5 mW DRAM)",
        &["component", "mW"],
        &rows,
    );
    write_csv("table7_power", &["component", "mw"], &rows);
}

fn main() {
    if std::env::args().any(|a| a == "--power") {
        power_table();
    } else {
        storage_table();
        power_table();
    }
}
