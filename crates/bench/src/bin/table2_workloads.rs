//! Table II: workload characteristics — MPKI and rows with 166+/500+/1000+
//! activations per 64 ms — measured by the security oracle on an
//! unmitigated baseline run of each calibrated generator.
//!
//! This experiment validates the workload substitution: the measured band
//! counts should track the paper's Table II inputs.

use aqua_bench::output::{print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_workload::spec::TABLE2;

fn main() {
    let harness = Harness::new(1000);
    let workloads: Vec<String> = TABLE2.iter().map(|w| w.name.to_string()).collect();
    let results = harness.run_matrix(&[Scheme::Baseline], &workloads);
    results.expect_complete();
    let mut rows = Vec::new();
    for w in TABLE2 {
        let report = results.get(Scheme::Baseline, w.name);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.2}", w.mpki),
            format!("{}/{}", report.oracle.avg_rows_166, w.act_166),
            format!("{}/{}", report.oracle.avg_rows_500, w.act_500),
            format!("{}/{}", report.oracle.avg_rows_1000, w.act_1000),
        ]);
    }
    print_table(
        "Table II: measured/paper rows per activation band (64 ms epochs)",
        &["workload", "mpki", "act166+", "act500+", "act1000+"],
        &rows,
    );
    write_csv(
        "table2_workloads",
        &["workload", "mpki", "act166", "act500", "act1000"],
        &rows,
    );
}
