//! Ablation: security margin of the Eq. 3 quarantine-area sizing.
//!
//! The paper sizes the RQA so that, under the worst-case migration flood,
//! no slot is reused within an epoch. This ablation shrinks the RQA below
//! the Eq. 3 bound and counts the slot-reuse violations the engine detects
//! — demonstrating both that the bound is needed (undersized areas violate)
//! and that it is not wasteful (full size plus margin shows zero).
//!
//! A second sweep measures the effect of the optional background draining
//! (`drain_per_refresh`): with draining on, installs find clean slots and
//! the 2.74 us evict-then-install path disappears from the critical path.

use aqua::{AquaConfig, AquaEngine};
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{pool, Harness};
use aqua_sim::{SimConfig, Simulation};
use aqua_workload::attack::MigrationFlood;
use aqua_workload::RequestGenerator;

fn run_flood(harness: &Harness, cfg: AquaConfig) -> (u64, u64, u64) {
    let space = harness.space();
    let gens = (0..harness.base.cores)
        .map(|_| Box::new(MigrationFlood::new(&space, 16, 500)) as Box<dyn RequestGenerator>);
    let sim_cfg = SimConfig::new(harness.base)
        .epochs(harness.epochs)
        .t_rh(harness.t_rh);
    let mut sim = Simulation::new(sim_cfg, AquaEngine::new(cfg).expect("valid config"), gens);
    let report = sim.run();
    let stats = sim.mitigation().stats();
    (
        report.mitigation.row_migrations,
        report.mitigation.violations,
        stats.evictions,
    )
}

fn main() {
    let harness = Harness::new(1000);
    let full = harness.aqua_config();

    println!("RQA sizing margin under the worst-case migration flood:");
    let sizes = [100u64, 75, 50, 25, 10];
    let floods = pool::run_indexed(harness.jobs, &sizes, |_, &pct| {
        let cfg = full.with_rqa_rows((full.rqa_rows * pct / 100).max(16));
        let out = run_flood(&harness, cfg);
        eprintln!("{pct}% done");
        (cfg.rqa_rows, out)
    });
    let mut rows = Vec::new();
    for (&pct, outcome) in sizes.iter().zip(floods) {
        let (rqa_rows, (migrations, violations, _)) =
            outcome.unwrap_or_else(|e| panic!("{pct}% flood failed: {e}"));
        rows.push(vec![
            format!("{pct}% of Eq.3"),
            rqa_rows.to_string(),
            migrations.to_string(),
            violations.to_string(),
        ]);
    }
    print_table(
        "RQA margin ablation (violations must be zero only at full size)",
        &["size", "rows", "migrations", "slot-reuse violations"],
        &rows,
    );
    write_csv(
        "ablation_rqa_margin",
        &["size", "rows", "migrations", "violations"],
        &rows,
    );

    println!("\nBackground-drain ablation (evictions left on the critical path):");
    let drains = [0u32, 1, 4, 16];
    let drained = pool::run_indexed(harness.jobs, &drains, |_, &drain| {
        let out = run_flood(&harness, full.with_drain_per_refresh(drain));
        eprintln!("drain {drain} done");
        out
    });
    let mut rows = Vec::new();
    for (&drain, outcome) in drains.iter().zip(drained) {
        let (migrations, _, evictions) =
            outcome.unwrap_or_else(|e| panic!("drain {drain} flood failed: {e}"));
        rows.push(vec![
            drain.to_string(),
            migrations.to_string(),
            evictions.to_string(),
            f2(evictions as f64 / migrations.max(1) as f64),
        ]);
    }
    print_table(
        "Background draining (section IV-D: takes evictions off the critical path)",
        &[
            "drain/refresh",
            "migrations",
            "critical-path evictions",
            "evict fraction",
        ],
        &rows,
    );
    write_csv(
        "ablation_drain",
        &["drain_per_refresh", "migrations", "evictions", "fraction"],
        &rows,
    );
}
