//! Table V: the Rowhammer threshold CROW can tolerate as copy-rows grow.
//!
//! Paper: CROW's Row-Clone confinement to one subarray means even 100% DRAM
//! overhead only reaches `T_RH` ~= 5.3K — above thresholds already observed
//! in 2020 devices.

use aqua_baselines::crow::table5;
use aqua_bench::output::{pct, print_table, write_csv};

fn main() {
    let rows: Vec<Vec<String>> = table5()
        .iter()
        .map(|p| {
            vec![
                p.copy_rows.to_string(),
                pct(p.dram_overhead),
                p.aggressors_tolerated.to_string(),
                p.t_rh_tolerated.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table V: CROW copy-rows vs tolerated T_RH (paper: 340K / 85K / 21.3K / 5.3K)",
        &["copy rows", "DRAM overhead", "aggressors", "T_RH tolerated"],
        &rows,
    );
    write_csv(
        "table5_crow",
        &["copy_rows", "overhead", "aggressors", "t_rh"],
        &rows,
    );
}
