//! Table III: quarantine-area size vs effective threshold (Eq. 1–3).
//!
//! Paper values: 15,302 rows at A=1000 down to 46,620 rows (2.2% of DRAM)
//! at A=1.

use aqua_analysis::rqa_sizing::table3;
use aqua_bench::output::{pct, print_table, write_csv};
use aqua_dram::{DdrTiming, DramGeometry};

fn main() {
    let rows: Vec<Vec<String>> = table3(&DdrTiming::ddr4_2400(), &DramGeometry::paper_table1())
        .iter()
        .map(|p| {
            vec![
                p.threshold.to_string(),
                p.rows.to_string(),
                format!("{:.0} MB", p.megabytes),
                pct(p.dram_overhead),
            ]
        })
        .collect();
    print_table(
        "Table III: quarantine size vs threshold (paper: 15302/23053/30872/37176/42367/46620 rows)",
        &["threshold A", "R_max rows", "size", "DRAM overhead"],
        &rows,
    );
    write_csv(
        "table3_rqa_size",
        &["threshold", "rows", "size_mb", "overhead"],
        &rows,
    );
}
