//! Figure 10: classification of FPT lookups with memory-mapped tables.
//!
//! Paper result (averages): 92.2% resolved by a clear bloom bit, 7.3% by an
//! FPT-Cache hit, 0.4% by the singleton optimization, and <0.1% need a DRAM
//! access.

use aqua_bench::output::{pct, print_table, write_csv};
use aqua_bench::{pool, Harness};

fn main() {
    let harness = Harness::new(1000);
    let workloads = harness.workloads();
    let total = workloads.len();
    let breakdowns = pool::run_indexed(harness.jobs, &workloads, |i, workload| {
        let (_, breakdown) = harness.run_aqua_mapped_detailed(workload, None);
        eprintln!("[{}/{total}] {workload} done", i + 1);
        breakdown
    });
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for (workload, breakdown) in workloads.iter().zip(breakdowns) {
        let breakdown = breakdown.unwrap_or_else(|e| panic!("{workload} failed: {e}"));
        let f = breakdown.fractions();
        for (s, v) in sums.iter_mut().zip(f) {
            *s += v;
        }
        rows.push(vec![
            workload.clone(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
        ]);
    }
    let n = total as f64;
    rows.push(vec![
        "average".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    print_table(
        "Figure 10: FPT-lookup breakdown (paper avg: 92.2% / 7.3% / 0.4% / <0.1%)",
        &["workload", "bloom-clear", "cache-hit", "singleton", "dram"],
        &rows,
    );
    write_csv(
        "fig10_fpt_breakdown",
        &["workload", "bloom_clear", "cache_hit", "singleton", "dram"],
        &rows,
    );
}
