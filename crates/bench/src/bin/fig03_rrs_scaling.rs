//! Figure 3: RRS slowdown as the Rowhammer threshold drops 4K -> 2K -> 1K.
//!
//! Paper result: average slowdown 2.7% at 4K, 8.2% at 2K, 19.8% at 1K —
//! the scalability cliff that motivates AQUA.

use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{Harness, Scheme};
use aqua_sim::gmean;

fn main() {
    let thresholds = [4000u64, 2000, 1000];
    let workloads = Harness::new(1000).workloads();
    let mut per_wl: Vec<Vec<String>> = workloads.iter().map(|w| vec![w.clone()]).collect();
    let mut means = vec!["gmean".to_string()];
    for &t_rh in &thresholds {
        let harness = Harness::new(t_rh);
        let results = harness.run_matrix(&[Scheme::Baseline, Scheme::Rrs], &workloads);
        results.expect_complete();
        let mut perfs = Vec::new();
        for (i, workload) in workloads.iter().enumerate() {
            let base = results.get(Scheme::Baseline, workload);
            let p = results.get(Scheme::Rrs, workload).normalized_perf(base);
            perfs.push(p);
            per_wl[i].push(f2(p));
        }
        means.push(f2(gmean(perfs).expect("positive perfs")));
    }
    per_wl.push(means);
    print_table(
        "Figure 3: RRS normalized perf vs T_RH (paper gmean: 0.973 @4K, 0.918 @2K, 0.802 @1K)",
        &["workload", "rrs@4K", "rrs@2K", "rrs@1K"],
        &per_wl,
    );
    write_csv(
        "fig03_rrs_scaling",
        &["workload", "rrs_4k", "rrs_2k", "rrs_1k"],
        &per_wl,
    );
}
