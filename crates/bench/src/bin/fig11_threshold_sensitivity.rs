//! Figure 11: AQUA's sensitivity to the Rowhammer threshold, plus the
//! section V-F structure-size sensitivity (`--structures`).
//!
//! Paper result: memory-mapped AQUA loses 0.2% at `T_RH` = 2K, 2.1% at 1K,
//! and 6.8% at 500. Bloom-filter sizing 8/16/32 KB moves the loss only
//! between 2.3% and 2.0%.

use aqua::TableMode;
use aqua_bench::output::{f2, print_table, write_csv};
use aqua_bench::{pool, Harness, Scheme};
use aqua_sim::gmean;

fn threshold_sweep() {
    let mut rows = Vec::new();
    for t_rh in [2000u64, 1000, 500] {
        let harness = Harness::new(t_rh);
        let workloads = harness.workloads();
        let results = harness.run_matrix(&[Scheme::Baseline, Scheme::AquaMapped], &workloads);
        results.expect_complete();
        let perfs: Vec<f64> = workloads
            .iter()
            .map(|w| {
                results
                    .get(Scheme::AquaMapped, w)
                    .normalized_perf(results.get(Scheme::Baseline, w))
            })
            .collect();
        rows.push(vec![
            t_rh.to_string(),
            f2(gmean(perfs).expect("positive perfs")),
        ]);
    }
    print_table(
        "Figure 11: AQUA (mapped) vs T_RH (paper gmean: 0.998 @2K, 0.979 @1K, 0.932 @500)",
        &["T_RH", "normalized perf"],
        &rows,
    );
    write_csv("fig11_threshold_sensitivity", &["t_rh", "perf"], &rows);
}

fn structure_sweep() {
    let harness = Harness::new(1000);
    let workloads = harness.workloads();
    // One shared set of baseline runs; only the AQUA structure sizing varies.
    let bases = harness.run_matrix(&[Scheme::Baseline], &workloads);
    bases.expect_complete();
    let mut rows = Vec::new();
    for (bloom_kb, cache_kb) in [(8u32, 16u32), (16, 16), (32, 16), (16, 8), (16, 32)] {
        let cfg = aqua::AquaConfig {
            table_mode: TableMode::Mapped {
                bloom_bits: bloom_kb as usize * 1024 * 8,
                cache_entries: cache_kb as usize * 1024 / 4, // 4 B/entry
            },
            ..harness.aqua_config()
        };
        let outcomes = pool::run_indexed(harness.jobs, &workloads, |_, workload| {
            let engine = aqua::AquaEngine::new(cfg).expect("valid config");
            let (report, _) = harness.run_engine(engine, workload, None);
            report.normalized_perf(bases.get(Scheme::Baseline, workload))
        });
        let perfs: Vec<f64> = workloads
            .iter()
            .zip(outcomes)
            .map(|(w, o)| o.unwrap_or_else(|e| panic!("{w} failed: {e}")))
            .collect();
        rows.push(vec![
            format!("bloom {bloom_kb} KB / cache {cache_kb} KB"),
            f2(gmean(perfs).expect("positive perfs")),
        ]);
        eprintln!("bloom {bloom_kb} KB cache {cache_kb} KB done");
    }
    print_table(
        "Section V-F: structure-size sensitivity (paper: 2.3% / 2.1% / 2.0% loss for 8/16/32 KB bloom)",
        &["configuration", "normalized perf"],
        &rows,
    );
    write_csv("fig11_structures", &["config", "perf"], &rows);
}

fn main() {
    if std::env::args().any(|a| a == "--structures") {
        structure_sweep();
    } else {
        threshold_sweep();
    }
}
