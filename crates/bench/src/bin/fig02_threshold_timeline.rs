//! Figure 2: the Rowhammer threshold over DRAM generations.
//!
//! Paper: the threshold fell ~30x, from 139K (DDR3, 2014) to 4.8K
//! (LPDDR4, 2020).

use aqua_analysis::thresholds::{reduction_factor, TIMELINE};
use aqua_bench::output::{print_table, write_csv};

fn main() {
    let rows: Vec<Vec<String>> = TIMELINE
        .iter()
        .map(|p| vec![p.device.to_string(), p.year.to_string(), p.t_rh.to_string()])
        .collect();
    print_table(
        "Figure 2: Rowhammer threshold timeline",
        &["device", "year", "T_RH"],
        &rows,
    );
    println!(
        "overall reduction: {:.1}x (paper: ~30x)",
        reduction_factor()
    );
    write_csv(
        "fig02_threshold_timeline",
        &["device", "year", "t_rh"],
        &rows,
    );
}
