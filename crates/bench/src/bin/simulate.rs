//! General-purpose simulation CLI.
//!
//! ```text
//! simulate [--scheme NAME] [--workload NAME] [--trh N] [--epochs N]
//! ```
//!
//! - `--scheme`: baseline | aqua-sram | aqua-mapped | rrs | victim-refresh |
//!   blockhammer (default aqua-sram)
//! - `--workload`: any Table II name or `mixNN` (default mcf)
//! - `--trh`: Rowhammer threshold (default 1000)
//! - `--epochs`: 64 ms epochs to simulate (default 2)
//!
//! Prints the full run report, including the security-oracle verdict and the
//! shadow-memory integrity check.

use aqua_bench::{Harness, Scheme};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let scheme = match arg("--scheme").as_deref().unwrap_or("aqua-sram") {
        "baseline" => Scheme::Baseline,
        "aqua-sram" => Scheme::AquaSram,
        "aqua-mapped" => Scheme::AquaMapped,
        "rrs" => Scheme::Rrs,
        "victim-refresh" => Scheme::VictimRefresh,
        "blockhammer" => Scheme::Blockhammer,
        other => {
            eprintln!("unknown scheme {other}");
            std::process::exit(2);
        }
    };
    let workload = arg("--workload").unwrap_or_else(|| "mcf".into());
    let t_rh: u64 = arg("--trh").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let mut harness = Harness::new(t_rh);
    if let Some(e) = arg("--epochs").and_then(|v| v.parse().ok()) {
        harness.epochs = e;
    }

    println!(
        "running {} on {workload} at T_RH={t_rh} for {} epochs...",
        scheme.name(),
        harness.epochs
    );
    let baseline = harness.run(Scheme::Baseline, &workload);
    let report = if scheme == Scheme::Baseline {
        baseline.clone()
    } else {
        harness.run(scheme, &workload)
    };

    println!("\nworkload             : {}", report.workload);
    println!("scheme               : {}", report.scheme);
    println!("requests completed   : {}", report.requests_done);
    println!(
        "normalized perf      : {:.4}",
        report.normalized_perf(&baseline)
    );
    println!(
        "row migrations/epoch : {:.1}",
        report.migrations_per_epoch()
    );
    println!(
        "victim refreshes     : {}",
        report.mitigation.victim_refreshes
    );
    println!("throttled requests   : {}", report.mitigation.throttled);
    println!("channel busy (data)  : {}", report.data_busy);
    println!("channel busy (migr.) : {}", report.migration_busy);
    println!("channel busy (table) : {}", report.table_busy);
    println!(
        "max row acts (window): {}",
        report.oracle.max_window_activations
    );
    println!("rows over T_RH       : {}", report.oracle.rows_over_trh);
    println!("rows flippable       : {}", report.oracle.rows_flippable);
    println!("scheme violations    : {}", report.mitigation.violations);
    println!("integrity violations : {}", report.integrity_violations);
}
