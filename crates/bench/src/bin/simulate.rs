//! General-purpose simulation CLI.
//!
//! ```text
//! simulate [--scheme NAME] [--workload NAME] [--trh N] [--epochs N]
//!          [--trace-out FILE] [--timeseries-out FILE] [--histograms FILE]
//!          [--spans-out FILE] [--trace-activates] [--trace-capacity N]
//!          [--metrics-addr HOST:PORT]
//! ```
//!
//! - `--scheme`: baseline | aqua-sram | aqua-mapped | rrs | victim-refresh |
//!   blockhammer (default aqua-sram)
//! - `--workload`: any Table II name or `mixNN` (default mcf)
//! - `--trh`: Rowhammer threshold (default 1000)
//! - `--epochs`: 64 ms epochs to simulate (default 2)
//! - `--trace-out`: write the event trace **and causal migration spans** as
//!   a Chrome-loadable JSON file (open in `chrome://tracing` or Perfetto;
//!   spans render as duration bars, events as instants)
//! - `--spans-out`: write the completed spans as JSONL (one record per
//!   span: id, parent, name, start/end/duration in ps)
//! - `--timeseries-out`: write the per-epoch time series as JSONL (one
//!   record per epoch: migrations, RQA occupancy, FPT-cache hit rate, ...)
//! - `--histograms`: write the latency histograms (memory access, migration
//!   stall, table lookup) as JSONL
//! - `--trace-activates`: include per-access `Activate` events in the trace
//!   (high volume; off by default)
//! - `--trace-capacity`: ring-buffer size of the event trace (default 65536;
//!   oldest events are dropped first)
//! - `--metrics-addr`: serve live `/metrics` (Prometheus text) and
//!   `/healthz` on this address while the run is in flight (port 0 binds an
//!   ephemeral port; equivalent to setting `AQUA_METRICS_ADDR`). Watch it
//!   with the `monitor` binary. Deterministic outputs are byte-identical
//!   with the plane on or off.
//!
//! Prints the full run report, including the security-oracle verdict, the
//! shadow-memory integrity check, and — when a hub is attached — a
//! host-throughput section (accesses per wallclock second; see DESIGN.md
//! §12 on host vs simulated time). Telemetry flags require the default
//! `telemetry` cargo feature; without it the output files are empty shells.

use std::fs::File;
use std::io::BufWriter;

use aqua_bench::{Harness, Scheme};
use aqua_telemetry::export::{
    write_chrome_trace_full, write_epochs_jsonl, write_histogram_jsonl, write_spans_jsonl,
};
use aqua_telemetry::{Telemetry, TelemetryConfig};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The histogram names `Simulation::attach_telemetry` registers.
const HISTOGRAMS: [&str; 3] = ["mem.access_ps", "migration.stall_ps", "table.lookup_ps"];

fn main() {
    let scheme = match arg("--scheme").as_deref().unwrap_or("aqua-sram") {
        "baseline" => Scheme::Baseline,
        "aqua-sram" => Scheme::AquaSram,
        "aqua-mapped" => Scheme::AquaMapped,
        "rrs" => Scheme::Rrs,
        "victim-refresh" => Scheme::VictimRefresh,
        "blockhammer" => Scheme::Blockhammer,
        other => {
            eprintln!("unknown scheme {other}");
            std::process::exit(2);
        }
    };
    let workload = arg("--workload").unwrap_or_else(|| "mcf".into());
    let t_rh: u64 = arg("--trh").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let mut harness = Harness::new(t_rh);
    if let Some(e) = arg("--epochs").and_then(|v| v.parse().ok()) {
        harness.epochs = e;
    }
    if harness.metrics.is_none() {
        if let Some(addr) = arg("--metrics-addr") {
            match aqua_telemetry::MetricsPlane::bind(&addr) {
                Ok(plane) => harness.metrics = Some(plane),
                Err(e) => {
                    eprintln!("cannot bind --metrics-addr {addr}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    let trace_out = arg("--trace-out");
    let timeseries_out = arg("--timeseries-out");
    let histograms_out = arg("--histograms");
    let spans_out = arg("--spans-out");
    // A live plane needs an enabled hub to snapshot, so it implies one
    // even when no export file was asked for.
    let want_telemetry = trace_out.is_some()
        || timeseries_out.is_some()
        || histograms_out.is_some()
        || spans_out.is_some()
        || harness.metrics.is_some();
    let telemetry = if want_telemetry {
        let mut cfg = TelemetryConfig {
            trace_activates: flag("--trace-activates"),
            ..TelemetryConfig::default()
        };
        if let Some(cap) = arg("--trace-capacity").and_then(|v| v.parse().ok()) {
            cfg.trace_capacity = cap;
        }
        let hub = Telemetry::new(cfg);
        if !hub.is_enabled() {
            eprintln!(
                "warning: built without the `telemetry` feature; \
                 trace/timeseries/histogram outputs will be empty"
            );
        }
        Some(hub)
    } else {
        None
    };

    println!(
        "running {} on {workload} at T_RH={t_rh} for {} epochs...",
        scheme.name(),
        harness.epochs
    );
    let baseline = harness.run(Scheme::Baseline, &workload);
    let report = if scheme == Scheme::Baseline && telemetry.is_none() {
        baseline.clone()
    } else {
        harness.run_instrumented(scheme, &workload, telemetry.as_ref())
    };

    println!("\nworkload             : {}", report.workload);
    println!("scheme               : {}", report.scheme);
    println!("requests completed   : {}", report.requests_done);
    println!(
        "normalized perf      : {:.4}",
        report.normalized_perf(&baseline)
    );
    println!(
        "row migrations/epoch : {:.1}",
        report.migrations_per_epoch()
    );
    println!(
        "victim refreshes     : {}",
        report.mitigation.victim_refreshes
    );
    println!("throttled requests   : {}", report.mitigation.throttled);
    println!("channel busy (data)  : {}", report.data_busy);
    println!("channel busy (migr.) : {}", report.migration_busy);
    println!("channel busy (table) : {}", report.table_busy);
    println!(
        "max row acts (window): {}",
        report.oracle.max_window_activations
    );
    println!("rows over T_RH       : {}", report.oracle.rows_over_trh);
    println!("rows flippable       : {}", report.oracle.rows_flippable);
    println!("scheme violations    : {}", report.mitigation.violations);
    println!("integrity violations : {}", report.integrity_violations);

    let Some(hub) = telemetry else { return };

    if let Some(summary) = &report.telemetry {
        println!("\n-- telemetry --");
        println!(
            "events               : {} recorded, {} dropped (ring full)",
            summary.events_recorded, summary.events_dropped
        );
        for (name, h) in &summary.histograms {
            if h.count == 0 {
                continue;
            }
            println!(
                "{name:<21}: n={} p50={:.0} p95={:.0} p99={:.0} max={} (ps)",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
        // Host-time throughput (wallclock seconds, not simulated time —
        // see DESIGN.md §12). Present whenever the run opened phases.
        if let Some(w) = &summary.wallclock {
            println!("\n-- host throughput --");
            println!("accesses simulated   : {}", w.accesses_simulated);
            println!(
                "host wallclock       : {:.3} ms",
                w.host_wallclock_ns as f64 / 1e6
            );
            println!("accesses/sec (host)  : {:.0}", w.accesses_per_sec);
        }
    }

    if let Some(path) = trace_out {
        let events = hub.trace_events();
        let spans = hub.spans();
        let mut w = BufWriter::new(File::create(&path).expect("create --trace-out file"));
        write_chrome_trace_full(&mut w, events.iter(), &spans).expect("write Chrome trace");
        println!(
            "wrote {} trace events and {} spans to {path}",
            events.len(),
            spans.len()
        );
    }
    if let Some(path) = spans_out {
        let spans = hub.spans();
        let mut w = BufWriter::new(File::create(&path).expect("create --spans-out file"));
        write_spans_jsonl(&mut w, &spans).expect("write spans JSONL");
        println!("wrote {} span records to {path}", spans.len());
    }
    if let Some(path) = timeseries_out {
        let series = hub.epochs();
        let mut w = BufWriter::new(File::create(&path).expect("create --timeseries-out file"));
        write_epochs_jsonl(&mut w, &series).expect("write epoch time series");
        println!("wrote {} epoch records to {path}", series.len());
    }
    if let Some(path) = histograms_out {
        let mut w = BufWriter::new(File::create(&path).expect("create --histograms file"));
        for name in HISTOGRAMS {
            let data = hub.histogram(name).snapshot();
            write_histogram_jsonl(&mut w, name, &data).expect("write histogram");
        }
        println!("wrote {} histograms to {path}", HISTOGRAMS.len());
    }
    // Keep the endpoint up for late scrapers (AQUA_METRICS_LINGER_MS).
    if let Some(plane) = &harness.metrics {
        plane.linger_from_env();
    }
}
