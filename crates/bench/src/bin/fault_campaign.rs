//! Seeded fault-injection campaign: fault-rate × scheme sweep.
//!
//! ```text
//! fault_campaign [--seed N] [--trh N] [--epochs N] [--rates A,B,C]
//!                [--watchdog-secs N] [--out NAME] [--resume JOURNAL]
//!                [--strict] [--chaos-cell SCHEME/WORKLOAD]
//!                [--metrics-addr HOST:PORT] [--fail-on-alert]
//! ```
//!
//! - `--seed`: campaign base seed (default 42). Every `(scheme, workload)`
//!   cell derives its own plan seed from it, so two runs with the same seed
//!   produce byte-identical CSVs — `ci.sh` diffs exactly that.
//! - `--trh`: Rowhammer threshold (default 1000)
//! - `--epochs`: 64 ms epochs per cell (default 2, or `AQUA_BENCH_EPOCHS`)
//! - `--rates`: comma-separated fault events per epoch (default `0,2,8,32`)
//! - `--watchdog-secs`: per-cell wall-clock budget; a cell that exceeds it
//!   becomes a failed cell instead of hanging the sweep (default 120)
//! - `--out`: CSV basename under `target/experiments/` (default
//!   `fault_campaign`)
//! - `--resume`: checkpoint journal path (see DESIGN.md section 14). Every
//!   concluded cell is durable before the sweep moves on; re-running with
//!   the same journal replays concluded cells and re-runs only the rest,
//!   and the final CSV is byte-identical to an uninterrupted run.
//! - `--strict`: also exit non-zero when a cell was *quarantined* as
//!   nondeterministic (by default quarantine is reported but not fatal,
//!   keeping it distinct from the failed-cell exit).
//! - `--chaos-cell`: sabotage one cell so its first attempt panics and the
//!   determinism probe succeeds — the supervision layer's own must-fail
//!   hook (the cell ends quarantined; see `--strict`).
//! - `--metrics-addr`: serve live `/metrics` (Prometheus text) and
//!   `/healthz` while the sweep runs (port 0 binds an ephemeral port;
//!   equivalent to `AQUA_METRICS_ADDR`; watch with the `monitor` binary).
//!   Observer-only: the CSV is byte-identical with the plane on or off.
//! - `--fail-on-alert`: exit non-zero when any deterministic alert rule
//!   fired during the sweep (`sim.alerts_fired` summed over every cell) —
//!   under seeded faults the built-in `integrity_escape` rule trips as
//!   soon as a corrupted translation is observed, so this is ci.sh's
//!   must-fail hook for the alert engine.
//!
//! Workloads default to a small representative trio (`mcf`, `lbm`, `mix00`);
//! set `AQUA_BENCH_WORKLOADS` to sweep others. Schemes are the ones with
//! fault-injectable state: aqua-sram, aqua-mapped, rrs, plus victim-refresh
//! as the no-translation-state control.
//!
//! Exits non-zero if any run reports `unaccounted > 0` (a corruption whose
//! wrong access escaped the shadow memory uncounted) or any cell failed.

use aqua_bench::output::{print_table, write_csv};
use aqua_bench::{Chaos, Harness, RunError, Scheme};
use aqua_faults::FaultSpec;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

const SCHEMES: [Scheme; 4] = [
    Scheme::AquaSram,
    Scheme::AquaMapped,
    Scheme::Rrs,
    Scheme::VictimRefresh,
];

const HEADER: [&str; 15] = [
    "rate",
    "scheme",
    "workload",
    "status",
    "injected",
    "unsupported",
    "applied",
    "corruptions",
    "recovered",
    "escaped_counted",
    "dormant",
    "unaccounted",
    "engine_recovered",
    "degraded_epochs",
    "integrity_violations",
];

fn main() {
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let t_rh: u64 = arg("--trh").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let rates: Vec<u32> = match arg("--rates") {
        Some(raw) => raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| match s.parse() {
                Ok(r) => r,
                Err(_) => {
                    eprintln!("unparsable fault rate {s:?} in --rates");
                    std::process::exit(2);
                }
            })
            .collect(),
        None => vec![0, 2, 8, 32],
    };
    let watchdog_secs: u64 = arg("--watchdog-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let out = arg("--out").unwrap_or_else(|| "fault_campaign".into());
    let strict = flag("--strict");
    let fail_on_alert = flag("--fail-on-alert");

    let mut harness = Harness::new(t_rh);
    if harness.metrics.is_none() {
        if let Some(addr) = arg("--metrics-addr") {
            match aqua_telemetry::MetricsPlane::bind(&addr) {
                Ok(plane) => harness.metrics = Some(plane),
                Err(e) => {
                    eprintln!("cannot bind --metrics-addr {addr}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(e) = arg("--epochs").and_then(|v| v.parse().ok()) {
        harness.epochs = e;
    }
    harness.watchdog = Some(std::time::Duration::from_secs(watchdog_secs));
    if let Some(path) = arg("--resume") {
        harness.journal = Some(path.into());
    }
    if let Some(cell) = arg("--chaos-cell") {
        harness.chaos = Some(Chaos {
            cell,
            fail_attempts: 1,
        });
    }
    // Default to a small representative workload trio; AQUA_BENCH_WORKLOADS
    // (already validated by workloads()) overrides it.
    let workloads = if std::env::var("AQUA_BENCH_WORKLOADS").is_ok() {
        harness.workloads()
    } else {
        vec!["mcf".to_string(), "lbm".to_string(), "mix00".to_string()]
    };

    // `--fail-on-alert` gates on per-cell `sim.alerts_fired` counters, and
    // the alert engine only runs on an enabled hub — so bring one for the
    // sweep. (A live plane auto-creates its own inside the matrix runner;
    // this is only for the gate.) CSV bytes are unchanged either way.
    let telemetry = fail_on_alert
        .then(|| aqua_telemetry::Telemetry::new(aqua_telemetry::TelemetryConfig::default()));
    if let Some(hub) = &telemetry {
        if !hub.is_enabled() {
            eprintln!(
                "warning: built without the `telemetry` feature; \
                 --fail-on-alert cannot observe alert firings"
            );
        }
    }

    println!(
        "fault campaign: seed={seed} T_RH={t_rh} epochs={} rates={rates:?} \
         schemes={:?} workloads={workloads:?} watchdog={watchdog_secs}s",
        harness.epochs,
        SCHEMES.map(Scheme::name),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut unaccounted_total: u64 = 0;
    let mut failed_cells: u64 = 0;
    let mut quarantined_cells: u64 = 0;
    let mut alerts_fired: u64 = 0;
    for &rate in &rates {
        harness.faults = Some(FaultSpec {
            seed,
            events_per_epoch: rate,
        });
        let results = harness.run_matrix_instrumented(&SCHEMES, &workloads, telemetry.as_ref());
        alerts_fired += results.health().alerts_fired;
        for cell in results.cells() {
            let mut row = vec![
                rate.to_string(),
                cell.scheme.name().to_string(),
                cell.workload.clone(),
            ];
            match &cell.outcome {
                Ok(report) => {
                    let f = report.faults;
                    unaccounted_total += f.unaccounted;
                    row.push("ok".into());
                    row.extend(
                        [
                            f.injected,
                            f.unsupported,
                            f.applied,
                            f.corruptions,
                            f.recovered_rows,
                            f.escaped_counted,
                            f.dormant,
                            f.unaccounted,
                            f.engine_recovered,
                            f.degraded_epochs,
                            report.integrity_violations,
                        ]
                        .map(|v| v.to_string()),
                    );
                }
                Err(err) => {
                    // The classified error kind becomes a deterministic
                    // status marker so seeded reruns still diff clean.
                    let status = match err {
                        RunError::Nondeterministic { .. } => {
                            quarantined_cells += 1;
                            "quarantined:nondeterministic".to_string()
                        }
                        RunError::Canceled => {
                            failed_cells += 1;
                            "canceled".to_string()
                        }
                        other => {
                            failed_cells += 1;
                            format!("failed:{}", other.kind())
                        }
                    };
                    row.push(status);
                    row.extend((0..11).map(|_| "-".to_string()));
                }
            }
            rows.push(row);
        }
    }

    print_table(&format!("Fault campaign (seed {seed})"), &HEADER, &rows);
    write_csv(&out, &HEADER, &rows);

    if telemetry.is_some() {
        println!("alert rules fired across the sweep: {alerts_fired}");
    }
    // Keep the endpoint up for late scrapers (AQUA_METRICS_LINGER_MS) —
    // before the exit paths, so a watching `monitor` sees the final state
    // even when the campaign is about to fail.
    if let Some(plane) = &harness.metrics {
        plane.linger_from_env();
    }

    if failed_cells > 0 {
        eprintln!("FAIL: {failed_cells} campaign cell(s) failed");
    }
    if unaccounted_total > 0 {
        eprintln!("FAIL: {unaccounted_total} corruption(s) escaped accounting (unaccounted > 0)");
    }
    if quarantined_cells > 0 {
        eprintln!(
            "{}: {quarantined_cells} cell(s) quarantined as nondeterministic \
             (seeded re-run did not reproduce the failure)",
            if strict { "FAIL" } else { "WARNING" }
        );
    }
    if fail_on_alert && alerts_fired > 0 {
        eprintln!("FAIL: {alerts_fired} alert firing(s) during the sweep (--fail-on-alert)");
    }
    if failed_cells > 0
        || unaccounted_total > 0
        || (strict && quarantined_cells > 0)
        || (fail_on_alert && alerts_fired > 0)
    {
        std::process::exit(1);
    }
    println!("every injected corruption accounted for: recovered, counted, or dormant");
}
