//! Criterion micro-benchmarks for the hot structures on AQUA's critical
//! path: CAT/FPT lookup, bloom-filter check, FPT-Cache access, RQA slot
//! allocation, the deterministic fast-hash map against std's SipHash map,
//! Misra-Gries update, the speculative telemetry span on the quiet
//! mitigation path, and the quarantine operation itself.

use aqua::{
    AquaConfig, AquaEngine, CollisionAvoidanceTable, FptCache, MappedTables, QuarantineArea,
    ResettableBloomFilter, RqaSlot,
};
use aqua_dram::mitigation::Mitigation;
use aqua_dram::{BaselineConfig, GlobalRowId, Time};
use aqua_telemetry::Telemetry;
use aqua_tracker::{AggressorTracker, MisraGriesTracker, TrackerConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cat(c: &mut Criterion) {
    let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(32 * 1024);
    for k in 0..23_000u64 {
        cat.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d), k as u32)
            .unwrap();
    }
    let mut i = 0u64;
    c.bench_function("cat_lookup_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 23_000;
            black_box(cat.get(i.wrapping_mul(0x2545_f491_4f6c_dd1d)))
        })
    });
    c.bench_function("cat_lookup_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(cat.get(i | 1 << 63))
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut bf = ResettableBloomFilter::new(128 * 1024, 16);
    for g in (0..23_000u64).map(|g| g * 7) {
        bf.insert(g);
    }
    let mut g = 0u64;
    c.bench_function("bloom_query", |b| {
        b.iter(|| {
            g += 13;
            black_box(bf.maybe_quarantined(g % 131_072))
        })
    });
}

fn bench_fpt_cache(c: &mut Criterion) {
    let mut cache = FptCache::new(4 * 1024);
    for r in 0..4_000u64 {
        cache.insert(r * 16, r, RqaSlot::new(r), true);
    }
    let mut r = 0u64;
    c.bench_function("fpt_cache_lookup", |b| {
        b.iter(|| {
            r = (r + 1) % 4_000;
            black_box(cache.lookup(r * 16, r))
        })
    });
}

fn bench_mapped_lookup(c: &mut Criterion) {
    let mut tables = MappedTables::new(128 * 1024, 4 * 1024, 16);
    for r in 0..10_000u64 {
        tables.map(GlobalRowId::new(r * 97), RqaSlot::new(r));
    }
    let mut r = 0u64;
    c.bench_function("mapped_lookup_cold_row", |b| {
        b.iter(|| {
            r += 1;
            black_box(tables.lookup(GlobalRowId::new((r * 31) % 2_000_000)))
        })
    });
}

fn bench_rqa(c: &mut Criterion) {
    let mut rqa = QuarantineArea::new(4096);
    let mut n = 0u64;
    c.bench_function("rqa_allocate", |b| {
        b.iter(|| {
            n += 1;
            if n.is_multiple_of(4096) {
                rqa.advance_epoch();
            }
            black_box(rqa.allocate())
        })
    });
}

fn bench_fastmap(c: &mut Criterion) {
    let mut map = aqua_fastmap::FxHashMap::<u64, u64>::default();
    for k in 0..23_000u64 {
        map.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k);
    }
    let mut k = 0u64;
    c.bench_function("fastmap_lookup_hit", |b| {
        b.iter(|| {
            k = (k + 1) % 23_000;
            black_box(map.get(&k.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        })
    });
    let mut std_map = std::collections::HashMap::<u64, u64>::new();
    for k in 0..23_000u64 {
        std_map.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k);
    }
    c.bench_function("sip_hashmap_lookup_hit", |b| {
        b.iter(|| {
            k = (k + 1) % 23_000;
            black_box(std_map.get(&k.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        })
    });
}

fn bench_tracker(c: &mut Criterion) {
    let cfg = TrackerConfig::for_rowhammer_threshold(1000);
    let mut tracker = MisraGriesTracker::new(cfg, 16);
    let mut i = 0u32;
    c.bench_function("misra_gries_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(tracker.on_activation(aqua_dram::RowAddr {
                bank: aqua_dram::BankId::new(i % 16),
                row: i.wrapping_mul(2_654_435_761) % 131_072,
            }))
        })
    });
}

/// The span cost the simulator pays per mitigation consultation. The quiet
/// path (speculate + end_if_used with no child attached — the overwhelmingly
/// common case) must stay within a few atomic ops; the eager variant is the
/// lock-taking cost it replaced, kept as the reference point. With the
/// telemetry feature off both compile to nothing and the numbers just
/// measure the timer loop.
fn bench_speculative_span(c: &mut Criterion) {
    let hub = Telemetry::new(Default::default());
    let mut t = 0u64;
    c.bench_function("span_speculate_quiet", |b| {
        b.iter(|| {
            t += 50;
            let sp = hub.span_speculate("bench.quiet", t);
            sp.end_if_used(black_box(t + 10));
        })
    });
    c.bench_function("span_eager_quiet", |b| {
        b.iter(|| {
            t += 50;
            let sp = hub.span_start("bench.eager", t);
            sp.end(black_box(t + 10));
        })
    });
    let off = Telemetry::disabled();
    c.bench_function("span_speculate_disabled_hub", |b| {
        b.iter(|| {
            t += 50;
            let sp = off.span_speculate("bench.off", t);
            sp.end_if_used(black_box(t + 10));
        })
    });
}

fn bench_translate(c: &mut Criterion) {
    let base = BaselineConfig::paper_table1();
    let cfg = AquaConfig::for_rowhammer_threshold(1000, &base);
    let mut engine = AquaEngine::new(cfg).unwrap();
    let mut row = 0u64;
    c.bench_function("aqua_translate", |b| {
        b.iter(|| {
            row = (row + 1) % 1_000_000;
            black_box(engine.translate(GlobalRowId::new(row), Time::ZERO))
        })
    });
}

criterion_group!(
    benches,
    bench_cat,
    bench_bloom,
    bench_fpt_cache,
    bench_mapped_lookup,
    bench_rqa,
    bench_fastmap,
    bench_tracker,
    bench_speculative_span,
    bench_translate
);
criterion_main!(benches);
