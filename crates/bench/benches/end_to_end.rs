//! Criterion end-to-end benchmarks: one small simulated epoch per scheme.
//!
//! These exercise the full translate / access / mitigate pipeline on the
//! reduced `tiny` system (4 banks, 1 ms epochs) so they complete quickly;
//! the figure-reproduction binaries in `src/bin/` run the full Table I
//! system.

use aqua::{AquaConfig, AquaEngine};
use aqua_dram::mitigation::NoMitigation;
use aqua_dram::BaselineConfig;
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{SimConfig, Simulation};
use aqua_workload::attack::MigrationFlood;
use aqua_workload::{AddressSpace, RequestGenerator};
use criterion::{criterion_group, criterion_main, Criterion};

fn base() -> BaselineConfig {
    BaselineConfig::tiny()
}

fn space() -> AddressSpace {
    AddressSpace::new(base().geometry, 0.75)
}

fn gen() -> Box<dyn RequestGenerator> {
    Box::new(MigrationFlood::new(&space(), 4, 500))
}

fn sim_cfg() -> SimConfig {
    SimConfig::new(base()).epochs(1).t_rh(1000)
}

fn small_aqua_config() -> AquaConfig {
    let cfg = AquaConfig::for_rowhammer_threshold(1000, &base()).with_rqa_rows(512);
    AquaConfig {
        tracker_entries_per_bank: 256,
        fpt_entries: 1024,
        ..cfg
    }
}

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch");
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        b.iter(|| Simulation::new(sim_cfg(), NoMitigation::new(base().geometry), [gen()]).run())
    });
    group.bench_function("aqua_sram", |b| {
        b.iter(|| {
            Simulation::new(
                sim_cfg(),
                AquaEngine::new(small_aqua_config()).unwrap(),
                [gen()],
            )
            .run()
        })
    });
    group.bench_function("aqua_mapped", |b| {
        b.iter(|| {
            let cfg = AquaConfig {
                table_mode: aqua::TableMode::Mapped {
                    bloom_bits: 1024,
                    cache_entries: 256,
                },
                ..small_aqua_config()
            };
            Simulation::new(sim_cfg(), AquaEngine::new(cfg).unwrap(), [gen()]).run()
        })
    });
    group.bench_function("rrs", |b| {
        b.iter(|| {
            let mut cfg = RrsConfig::for_rowhammer_threshold(1000, &base());
            cfg.tracker_entries_per_bank = 256;
            cfg.rit_pairs = 4096;
            Simulation::new(sim_cfg(), RrsEngine::new(cfg), [gen()]).run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
