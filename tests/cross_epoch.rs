//! Cross-epoch behaviour: lazy draining, background draining, and the
//! two-epoch security window, exercised end-to-end through the simulator.

use aqua::{AquaConfig, AquaEngine};
use aqua_dram::mitigation::Mitigation;
use aqua_dram::{BaselineConfig, GlobalRowId, Time};

const T_RH: u64 = 20;

fn engine_with(rqa_rows: u64, drain: u32) -> AquaEngine {
    let base = BaselineConfig::tiny();
    let cfg = AquaConfig::for_rowhammer_threshold(T_RH, &base).with_rqa_rows(rqa_rows);
    let cfg = AquaConfig {
        tracker_entries_per_bank: 128,
        fpt_entries: 256,
        drain_per_refresh: drain,
        ..cfg
    };
    AquaEngine::new(cfg).expect("valid config")
}

fn quarantine(engine: &mut AquaEngine, row: u64) {
    let row = GlobalRowId::new(row);
    for _ in 0..T_RH / 2 {
        let t = engine.translate(row, Time::ZERO);
        engine.on_activation(t.phys, Time::ZERO);
    }
}

#[test]
fn rows_return_home_when_their_slot_is_recycled() {
    let mut engine = engine_with(4, 0);
    for r in 0..4 {
        quarantine(&mut engine, r * 7);
    }
    assert_eq!(engine.quarantined_rows(), 4);
    engine.end_epoch();
    // Four fresh installs recycle all four slots: each evicts one stale row.
    for r in 10..14 {
        quarantine(&mut engine, r * 7);
    }
    assert_eq!(engine.stats().evictions, 4);
    assert_eq!(engine.quarantined_rows(), 4);
    // The original rows translate to their home locations again.
    for r in 0..4u64 {
        let home = engine
            .config()
            .geometry
            .expand(GlobalRowId::new(r * 7))
            .unwrap();
        assert_eq!(
            engine.translate(GlobalRowId::new(r * 7), Time::ZERO).phys,
            home
        );
    }
    engine.check_consistency().expect("consistent tables");
}

#[test]
fn background_drain_clears_rqa_between_epochs() {
    let mut engine = engine_with(16, 4);
    for r in 0..8 {
        quarantine(&mut engine, r * 5);
    }
    engine.end_epoch();
    // Sixteen refresh ticks at 4 drains each sweep the whole RQA.
    for _ in 0..16 {
        engine.on_refresh_tick(Time::ZERO);
    }
    assert_eq!(engine.quarantined_rows(), 0);
    assert_eq!(engine.stats().background_drains, 8);
    // Subsequent installs find clean slots: no on-demand evictions.
    quarantine(&mut engine, 99);
    assert_eq!(engine.stats().evictions, 0);
    engine.check_consistency().expect("consistent tables");
}

#[test]
fn background_drain_never_touches_current_epoch_rows() {
    let mut engine = engine_with(8, 8);
    quarantine(&mut engine, 3);
    // Same epoch: the freshly quarantined row must stay quarantined.
    engine.on_refresh_tick(Time::ZERO);
    assert_eq!(engine.quarantined_rows(), 1);
    assert_eq!(engine.stats().background_drains, 0);
}

#[test]
fn requarantine_across_epochs_keeps_counts_bounded() {
    // A row hammered across many epochs keeps moving within the RQA; the
    // per-epoch tracker reset means each epoch re-earns its threshold.
    let mut engine = engine_with(32, 0);
    for _ in 0..5 {
        quarantine(&mut engine, 42);
        quarantine(&mut engine, 42);
        engine.end_epoch();
    }
    let stats = engine.stats();
    assert_eq!(stats.installs, 1);
    assert_eq!(stats.internal_moves, 9);
    assert_eq!(stats.violations, 0);
    engine.check_consistency().expect("consistent tables");
}

#[test]
fn tracker_state_does_not_leak_across_epochs() {
    let mut engine = engine_with(16, 0);
    let row = GlobalRowId::new(5);
    // T_RH/2 - 1 activations: one short of quarantine.
    for _ in 0..(T_RH / 2 - 1) {
        let t = engine.translate(row, Time::ZERO);
        engine.on_activation(t.phys, Time::ZERO);
    }
    engine.end_epoch();
    for _ in 0..(T_RH / 2 - 1) {
        let t = engine.translate(row, Time::ZERO);
        engine.on_activation(t.phys, Time::ZERO);
    }
    assert_eq!(engine.stats().installs, 0);
    // Yet the two-epoch total stayed below T_RH, so this is safe (P1).
}
