//! End-to-end workload-calibration checks: driving the full Table I system
//! with a calibrated generator reproduces that workload's Table II
//! activation profile, as observed by the independent oracle.
//!
//! Only the cheaper workloads run here (the full 18-workload sweep is the
//! `table2_workloads` bench binary).

use aqua_bench::{Harness, Scheme};
use aqua_workload::spec;

fn check_workload(name: &str, tolerance: f64) {
    let mut harness = Harness::new(1000);
    harness.epochs = 1;
    let w = spec::by_name(name).unwrap();
    let report = harness.run(Scheme::Baseline, name);
    let measured = [
        report.oracle.avg_rows_166 as f64,
        report.oracle.avg_rows_500 as f64,
        report.oracle.avg_rows_1000 as f64,
    ];
    let expected = [w.act_166 as f64, w.act_500 as f64, w.act_1000 as f64];
    for (i, (m, e)) in measured.iter().zip(&expected).enumerate() {
        let slack = e * tolerance + 60.0; // band-edge sampling noise
        assert!(
            (m - e).abs() <= slack,
            "{name}: band {i} measured {m} expected {e} (slack {slack})"
        );
    }
}

#[test]
fn xz_profile_matches_table2() {
    check_workload("xz", 0.15);
}

#[test]
fn roms_profile_matches_table2() {
    check_workload("roms", 0.15);
}

#[test]
fn mcf_profile_matches_table2() {
    check_workload("mcf", 0.15);
}

#[test]
fn quiet_workload_has_no_hot_rows() {
    let mut harness = Harness::new(1000);
    harness.epochs = 1;
    let report = harness.run(Scheme::Baseline, "povray");
    assert_eq!(report.oracle.avg_rows_166, 0);
    assert!(report.requests_done > 0);
}

#[test]
fn aqua_leaves_quiet_workloads_untouched() {
    let mut harness = Harness::new(1000);
    harness.epochs = 1;
    let base = harness.run(Scheme::Baseline, "povray");
    let aqua = harness.run(Scheme::AquaSram, "povray");
    assert_eq!(aqua.mitigation.row_migrations, 0);
    assert!(aqua.normalized_perf(&base) > 0.999);
}
