//! Cross-crate security integration tests: every attack pattern against
//! every defence, checked by the ground-truth oracle.
//!
//! Runs on the reduced `tiny` system (4 banks, 1 ms epochs) with the
//! threshold scaled so the activation-to-threshold ratio matches the full
//! system at `T_RH` = 1K over 64 ms.

use aqua::{AquaConfig, AquaEngine, TableMode};
use aqua_baselines::{Blockhammer, BlockhammerConfig, VictimRefresh, VictimRefreshConfig};
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::{BankId, BaselineConfig, Duration, RowAddr};
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{RunReport, SimConfig, Simulation};
use aqua_workload::attack::{Hammer, MigrationFlood};
use aqua_workload::{AddressSpace, RequestGenerator};

const T_RH: u64 = 100;
const VICTIM: u32 = 100;

fn base() -> BaselineConfig {
    BaselineConfig::tiny()
}

fn space() -> AddressSpace {
    AddressSpace::new(base().geometry, 0.75)
}

fn sim_cfg() -> SimConfig {
    SimConfig::new(base()).epochs(3).t_rh(T_RH)
}

fn aqua_engine(mode: TableMode) -> AquaEngine {
    let cfg = AquaConfig::for_rowhammer_threshold(T_RH, &base()).with_rqa_rows(700);
    let cfg = AquaConfig {
        tracker_entries_per_bank: 512,
        fpt_entries: 2048,
        table_mode: mode,
        ..cfg
    };
    AquaEngine::new(cfg).expect("valid tiny AQUA config")
}

fn rrs_engine() -> RrsEngine {
    let mut cfg = RrsConfig::for_rowhammer_threshold(T_RH * 6, &base());
    // Match the scaled threshold: swap at T_RH / 6 of the scaled T_RH.
    cfg.swap_threshold = (T_RH / 6).max(1);
    cfg.t_rh = T_RH;
    cfg.tracker_entries_per_bank = 512;
    cfg.rit_pairs = 2048;
    RrsEngine::new(cfg)
}

fn run<M: Mitigation>(engine: M, pattern: impl RequestGenerator + 'static) -> (RunReport, bool) {
    let mut sim = Simulation::new(
        sim_cfg(),
        engine,
        [Box::new(pattern) as Box<dyn RequestGenerator>],
    );
    let report = sim.run();
    let victim_flippable = sim.oracle().is_flippable(RowAddr {
        bank: BankId::new(0),
        row: VICTIM,
    });
    (report, victim_flippable)
}

#[test]
fn unmitigated_attacks_flip_bits() {
    for pattern in [
        Hammer::double_sided(&space(), 0, VICTIM),
        Hammer::many_sided(&space(), 0, VICTIM - 8, 8),
    ] {
        let (report, _) = run(NoMitigation::new(base().geometry), pattern);
        assert!(report.oracle.rows_over_trh > 0);
        assert!(report.oracle.rows_flippable > 0);
    }
}

#[test]
fn aqua_sram_defeats_every_pattern() {
    for pattern in [
        Hammer::double_sided(&space(), 0, VICTIM),
        Hammer::many_sided(&space(), 0, VICTIM - 8, 8),
        Hammer::half_double(&space(), 0, VICTIM),
    ] {
        let label = pattern.label();
        let (report, victim) = run(aqua_engine(TableMode::Sram), pattern);
        assert_eq!(
            report.oracle.rows_over_trh, 0,
            "{label}: {:?}",
            report.oracle
        );
        assert!(!victim, "{label}: victim must be safe");
        assert_eq!(report.mitigation.violations, 0, "{label}");
    }
}

#[test]
fn aqua_mapped_defeats_every_pattern() {
    let mode = TableMode::Mapped {
        bloom_bits: 512,
        cache_entries: 64,
    };
    for pattern in [
        Hammer::double_sided(&space(), 0, VICTIM),
        Hammer::half_double(&space(), 0, VICTIM),
    ] {
        let label = pattern.label();
        let (report, victim) = run(aqua_engine(mode), pattern);
        assert_eq!(
            report.oracle.rows_over_trh, 0,
            "{label}: {:?}",
            report.oracle
        );
        assert!(!victim, "{label}");
    }
}

#[test]
fn rrs_defeats_double_sided() {
    let (report, victim) = run(rrs_engine(), Hammer::double_sided(&space(), 0, VICTIM));
    assert_eq!(report.oracle.rows_over_trh, 0, "{:?}", report.oracle);
    assert!(!victim);
    assert!(report.mitigation.row_migrations > 0);
}

#[test]
fn victim_refresh_loses_only_to_half_double() {
    let vr = || {
        let mut cfg = VictimRefreshConfig::for_rowhammer_threshold(T_RH);
        cfg.tracker_entries_per_bank = 512;
        VictimRefresh::new(cfg, base().geometry)
    };
    let (_, classic_victim) = run(vr(), Hammer::double_sided(&space(), 0, VICTIM));
    assert!(!classic_victim, "classic must be defended");
    let (_, hd_victim) = run(vr(), Hammer::half_double(&space(), 0, VICTIM));
    assert!(hd_victim, "Half-Double must break victim refresh");
}

#[test]
fn wider_victim_refresh_only_moves_the_half_double_frontier() {
    // Section I: refreshing distance-1 AND distance-2 rows does not close
    // the hole — the attack escalates to hammering distance-3 rows, whose
    // mitigative refreshes (of the distance-1/2 neighbours) still disturb
    // the victim. AQUA is immune because it refreshes nothing.
    let vr2 = || {
        let mut cfg = VictimRefreshConfig::for_rowhammer_threshold(T_RH).with_blast_radius(2);
        cfg.tracker_entries_per_bank = 512;
        VictimRefresh::new(cfg, base().geometry)
    };
    // Radius-2 refresh defends the plain Half-Double pattern...
    let (_, hd2) = run(vr2(), Hammer::half_double(&space(), 0, VICTIM));
    assert!(!hd2, "distance-2 refresh must stop the distance-2 pattern");
    // ...but the distance-3 escalation defeats it.
    let (_, hd3) = run(vr2(), Hammer::distance_sided(&space(), 0, VICTIM, 3));
    assert!(hd3, "distance-3 hammering must defeat radius-2 refresh");
    // AQUA stops the escalated pattern too.
    let (report, aqua_hd3) = run(
        aqua_engine(TableMode::Sram),
        Hammer::distance_sided(&space(), 0, VICTIM, 3),
    );
    assert!(!aqua_hd3);
    assert_eq!(report.oracle.rows_over_trh, 0);
}

#[test]
fn blockhammer_throttles_but_secures() {
    let bh = Blockhammer::new(
        BlockhammerConfig {
            blacklist_threshold: T_RH / 4,
            quota: T_RH / 2,
            window: base().epoch,
        },
        base().geometry,
    );
    let (report, victim) = run(bh, Hammer::row_conflict(&space(), 0, VICTIM));
    assert!(!victim);
    assert!(report.mitigation.throttled > 0);
    // The throttled pattern completes far fewer requests than unthrottled.
    let (free, _) = run(
        NoMitigation::new(base().geometry),
        Hammer::row_conflict(&space(), 0, VICTIM),
    );
    assert!(
        report.requests_done * 10 < free.requests_done,
        "throttled {} vs free {}",
        report.requests_done,
        free.requests_done
    );
}

#[test]
fn undersized_rqa_is_detected_not_silent() {
    let cfg = AquaConfig::for_rowhammer_threshold(T_RH, &base()).with_rqa_rows(4);
    let cfg = AquaConfig {
        tracker_entries_per_bank: 512,
        fpt_entries: 2048,
        ..cfg
    };
    let engine = AquaEngine::new(cfg).unwrap();
    let flood = MigrationFlood::new(&space(), 4, T_RH / 2);
    let (report, _) = run(engine, flood);
    assert!(
        report.mitigation.violations > 0,
        "an undersized RQA must be reported"
    );
}

#[test]
fn properly_sized_rqa_survives_the_flood() {
    // Eq. 3 sizing for the tiny geometry at the scaled threshold, but the
    // tiny epoch is 1 ms (not tREFW), so scale the requirement accordingly.
    let flood = MigrationFlood::new(&space(), 4, T_RH / 2);
    let (report, _) = run(aqua_engine(TableMode::Sram), flood);
    assert_eq!(report.mitigation.violations, 0);
    assert_eq!(report.oracle.rows_over_trh, 0, "{:?}", report.oracle);
    assert!(report.mitigation.row_migrations > 0);
}

#[test]
fn migration_flood_costs_match_dos_model() {
    // The DoS bound says the flood keeps the channel busy ~n x t_mov per
    // t_AGG; verify migration busy time is a large fraction of the run but
    // the system still makes forward progress.
    let flood = MigrationFlood::new(&space(), 4, T_RH / 2);
    let (report, _) = run(aqua_engine(TableMode::Sram), flood);
    assert!(report.migration_busy > Duration::ZERO);
    assert!(report.requests_done > 1000);
}
