//! Property-based tests on the mapping structures: under arbitrary access
//! sequences, the FPT/RPT stay mutually consistent inverse maps, AQUA's
//! translation is injective over live rows, and the RRS RIT remains an
//! involution.

use aqua::{AquaConfig, AquaEngine, TableMode};
use aqua_dram::mitigation::Mitigation;
use aqua_dram::{BaselineConfig, GlobalRowId, Time};
use aqua_rrs::{RrsConfig, RrsEngine};
use proptest::prelude::*;
use std::collections::HashMap;

const T_RH: u64 = 20; // mitigate every 10 activations

fn aqua_engine(mode: TableMode) -> AquaEngine {
    let base = BaselineConfig::tiny();
    let cfg = AquaConfig::for_rowhammer_threshold(T_RH, &base).with_rqa_rows(64);
    let cfg = AquaConfig {
        tracker_entries_per_bank: 128,
        fpt_entries: 128,
        table_mode: mode,
        ..cfg
    };
    AquaEngine::new(cfg).expect("valid tiny config")
}

/// Drives the engine with an access sequence, mixing in epoch boundaries
/// (`row == 255` acts as an epoch marker).
fn drive(engine: &mut AquaEngine, accesses: &[(u8, u8)]) {
    for &(row, repeat) in accesses {
        if row == 255 {
            engine.end_epoch();
            continue;
        }
        let row = GlobalRowId::new(row as u64);
        for _ in 0..repeat {
            let t = engine.translate(row, Time::ZERO);
            engine.on_activation(t.phys, Time::ZERO);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aqua_sram_tables_stay_consistent(accesses in prop::collection::vec((0u8..=255, 1u8..30), 1..60)) {
        let mut engine = aqua_engine(TableMode::Sram);
        drive(&mut engine, &accesses);
        prop_assert!(engine.check_consistency().is_ok());
    }

    #[test]
    fn aqua_mapped_tables_stay_consistent(accesses in prop::collection::vec((0u8..=255, 1u8..30), 1..60)) {
        let mut engine = aqua_engine(TableMode::Mapped { bloom_bits: 64, cache_entries: 32 });
        drive(&mut engine, &accesses);
        prop_assert!(engine.check_consistency().is_ok());
    }

    #[test]
    fn aqua_translation_is_injective(accesses in prop::collection::vec((0u8..=255, 1u8..30), 1..60)) {
        let mut engine = aqua_engine(TableMode::Sram);
        drive(&mut engine, &accesses);
        // Two distinct logical rows must never resolve to one physical row:
        // that would alias data.
        let mut seen: HashMap<_, GlobalRowId> = HashMap::new();
        for r in 0..200u64 {
            let row = GlobalRowId::new(r);
            let phys = engine.translate(row, Time::ZERO).phys;
            if let Some(prev) = seen.insert(phys, row) {
                prop_assert!(false, "rows {prev} and {row} alias at {phys}");
            }
        }
    }

    #[test]
    fn aqua_quarantined_rows_resolve_to_rqa(accesses in prop::collection::vec((0u8..40, 20u8..30), 1..40)) {
        let mut engine = aqua_engine(TableMode::Sram);
        drive(&mut engine, &accesses);
        // Every row the engine reports quarantined must translate into the
        // reserved quarantine region, and every other row must not.
        let quarantined = engine.quarantined_rows();
        let mut found = 0;
        for r in 0..256u64 {
            let row = GlobalRowId::new(r);
            let phys = engine.translate(row, Time::ZERO).phys;
            if engine.config().rqa_region_contains(phys) {
                found += 1;
            }
        }
        prop_assert_eq!(found, quarantined);
    }

    #[test]
    fn rrs_translation_stays_an_involution(accesses in prop::collection::vec((0u8..=255, 1u8..30), 1..60)) {
        let base = BaselineConfig::tiny();
        let mut cfg = RrsConfig::for_rowhammer_threshold(60, &base); // swap at 10
        cfg.tracker_entries_per_bank = 128;
        cfg.rit_pairs = 64;
        let mut engine = RrsEngine::new(cfg);
        for &(row, repeat) in &accesses {
            if row == 255 {
                engine.end_epoch();
                continue;
            }
            let row = GlobalRowId::new(row as u64);
            for _ in 0..repeat {
                let t = engine.translate(row, Time::ZERO);
                engine.on_activation(t.phys, Time::ZERO);
            }
        }
        engine.check_consistency((0..512).map(GlobalRowId::new));
    }
}
